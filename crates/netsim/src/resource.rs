//! Max-min fair fluid sharing of capacitated resources.
//!
//! The core abstraction of the cluster simulator: a set of *resources* (NIC
//! uplinks/downlinks, disks, loopback memory channels), each with a capacity in
//! bytes/second, and a set of *flows*, each of which must push a number of
//! bytes through one or more resources simultaneously (a host-to-host transfer
//! uses the source uplink **and** the destination downlink).
//!
//! Rates are assigned by weighted **progressive filling** (the textbook
//! max-min fairness algorithm): repeatedly find the resource whose fair share
//! per unit weight is smallest, freeze every unfrozen flow crossing it at its
//! fair share, subtract, and repeat. This is how long-lived TCP flows through
//! a non-blocking switch share a Gigabit Ethernet in steady state — exactly
//! the regime of the paper's shuffle measurements.

use std::collections::BTreeMap;

/// Identifies a capacitated resource (e.g. "host 3 uplink").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub usize);

/// Identifies an active flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

#[derive(Debug, Clone)]
struct FlowState {
    remaining: f64,
    resources: Vec<ResourceId>,
    weight: f64,
    rate: f64,
    /// Stalled flows (a link partition holds them) keep their delivered
    /// bytes and their id but get rate 0 and contribute no weight to the
    /// fair-share computation until resumed.
    stalled: bool,
}

/// Completion-free residual below which a flow counts as finished.
/// (Fluid arithmetic is f64; one byte of slack absorbs rounding.)
const DONE_EPS: f64 = 1e-6;

/// The fluid engine: resources, flows, and max-min rate assignment.
///
/// Purely computational — time advancement is driven externally (see
/// `netsim::net::Net` for the DES driver).
#[derive(Debug, Default)]
pub struct FluidEngine {
    capacities: Vec<f64>,
    // BTreeMap so iteration order (and therefore f64 accumulation order) is
    // deterministic across runs.
    flows: BTreeMap<FlowId, FlowState>,
    next_id: u64,
    total_bytes_completed: f64,
}

impl FluidEngine {
    /// Engine with no resources.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a resource with the given capacity (bytes/sec); returns its id.
    ///
    /// # Panics
    /// Panics unless `capacity` is positive and finite.
    pub fn add_resource(&mut self, capacity: f64) -> ResourceId {
        assert!(
            capacity > 0.0 && capacity.is_finite(),
            "resource capacity must be positive and finite, got {capacity}"
        );
        self.capacities.push(capacity);
        ResourceId(self.capacities.len() - 1)
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.capacities.len()
    }

    /// Capacity of a resource.
    pub fn capacity(&self, r: ResourceId) -> f64 {
        self.capacities[r.0]
    }

    /// Start a flow of `bytes` across `resources` with fairness `weight`
    /// (1.0 = one TCP-stream's worth). Rates of all flows are recomputed.
    ///
    /// # Panics
    /// Panics if `resources` is empty, contains an unknown id, or `weight`
    /// is not positive.
    pub fn start_flow(&mut self, bytes: u64, resources: &[ResourceId], weight: f64) -> FlowId {
        assert!(
            !resources.is_empty(),
            "flow must cross at least one resource"
        );
        assert!(weight > 0.0 && weight.is_finite());
        for r in resources {
            assert!(r.0 < self.capacities.len(), "unknown resource {r:?}");
        }
        let id = FlowId(self.next_id);
        self.next_id += 1;
        // Deduplicate: a flow crossing the same resource twice would double-
        // count its weight in the fair-share computation.
        let mut resources = resources.to_vec();
        resources.sort_unstable();
        resources.dedup();
        self.flows.insert(
            id,
            FlowState {
                remaining: bytes as f64,
                resources,
                weight,
                rate: 0.0,
                stalled: false,
            },
        );
        self.recompute();
        id
    }

    /// Remove a flow without completing it. Returns the unfinished byte count,
    /// or `None` if the flow is unknown (already completed or cancelled).
    pub fn cancel_flow(&mut self, id: FlowId) -> Option<u64> {
        let st = self.flows.remove(&id)?;
        self.recompute();
        Some(st.remaining.max(0.0).round() as u64)
    }

    /// Re-rate a resource mid-simulation (fault injection: a NIC that
    /// renegotiated down, a disk retrying sectors). All flow rates are
    /// recomputed immediately, so the max-min shares react at the instant
    /// of the change.
    ///
    /// # Panics
    /// Panics unless `capacity` is positive and finite.
    pub fn set_capacity(&mut self, r: ResourceId, capacity: f64) {
        assert!(
            capacity > 0.0 && capacity.is_finite(),
            "resource capacity must be positive and finite, got {capacity}"
        );
        self.capacities[r.0] = capacity;
        self.recompute();
    }

    /// Kill every flow crossing any of `resources` (endpoint death: the
    /// host owning them crashed). Returns `(id, unfinished bytes)` per
    /// killed flow in ascending id order. Rates are recomputed **once**, so
    /// the freed bandwidth re-shares to the survivors immediately — no
    /// ghost flows keep holding max-min shares.
    pub fn kill_flows_crossing(&mut self, resources: &[ResourceId]) -> Vec<(FlowId, u64)> {
        let victims: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, f)| f.resources.iter().any(|r| resources.contains(r)))
            .map(|(&id, _)| id)
            .collect();
        let mut out = Vec::with_capacity(victims.len());
        for id in victims {
            let st = self.flows.remove(&id).expect("victim flow present");
            out.push((id, st.remaining.max(0.0).round() as u64));
        }
        if !out.is_empty() {
            self.recompute();
        }
        out
    }

    /// Stall a flow: it keeps its id and delivered bytes but gets rate 0 and
    /// stops competing for bandwidth until [`resume_flow`](Self::resume_flow).
    /// Models a link partition holding TCP connections in retransmit backoff.
    /// Returns `false` if the flow is unknown; stalling twice is a no-op.
    pub fn stall_flow(&mut self, id: FlowId) -> bool {
        match self.flows.get_mut(&id) {
            Some(f) => {
                if !f.stalled {
                    f.stalled = true;
                    self.recompute();
                }
                true
            }
            None => false,
        }
    }

    /// Resume a stalled flow; it rejoins the max-min sharing immediately.
    /// Returns `false` if the flow is unknown; resuming a running flow is a
    /// no-op.
    pub fn resume_flow(&mut self, id: FlowId) -> bool {
        match self.flows.get_mut(&id) {
            Some(f) => {
                if f.stalled {
                    f.stalled = false;
                    self.recompute();
                }
                true
            }
            None => false,
        }
    }

    /// Whether a flow is currently stalled; `None` if unknown.
    pub fn is_stalled(&self, id: FlowId) -> Option<bool> {
        self.flows.get(&id).map(|f| f.stalled)
    }

    /// Current rate (bytes/sec) of a flow; `None` if unknown.
    pub fn rate(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.rate)
    }

    /// Remaining bytes of a flow; `None` if unknown.
    pub fn remaining(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.remaining)
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total bytes delivered by completed-or-progressed flows so far.
    pub fn total_bytes_completed(&self) -> f64 {
        self.total_bytes_completed
    }

    /// Advance all flows by `dt_secs`, returning the ids of flows that
    /// completed (in ascending id order — deterministic). Rates are
    /// recomputed if anything completed.
    pub fn advance(&mut self, dt_secs: f64) -> Vec<FlowId> {
        assert!(dt_secs >= 0.0 && dt_secs.is_finite());
        if self.flows.is_empty() {
            return Vec::new();
        }
        // NOTE: dt == 0 must still run the completion scan — zero-byte flows
        // complete without time passing, and the DES driver relies on that.
        let mut done = Vec::new();
        for (&id, f) in self.flows.iter_mut() {
            let moved = f.rate * dt_secs;
            self.total_bytes_completed += moved.min(f.remaining);
            f.remaining -= moved;
            // A stalled flow never completes — even a zero-byte one must wait
            // for the partition to heal before its completion can be observed.
            if !f.stalled && f.remaining <= DONE_EPS {
                done.push(id);
            }
        }
        for id in &done {
            self.flows.remove(id);
        }
        if !done.is_empty() {
            self.recompute();
        }
        done
    }

    /// Seconds until the next flow completes at current rates, if any flow is
    /// making progress.
    pub fn next_completion(&self) -> Option<f64> {
        self.flows
            .values()
            .filter(|f| f.rate > 0.0)
            .map(|f| (f.remaining / f.rate).max(0.0))
            .min_by(|a, b| a.partial_cmp(b).expect("NaN completion time"))
    }

    /// Recompute all flow rates by weighted progressive filling.
    fn recompute(&mut self) {
        let n_res = self.capacities.len();
        let mut residual = self.capacities.clone();
        // Per-resource total weight of unfrozen flows.
        let mut weight_on: Vec<f64> = vec![0.0; n_res];
        // Stalled flows are pre-frozen at rate 0 and contribute no weight:
        // a partitioned connection neither moves bytes nor holds shares.
        let mut frozen: BTreeMap<FlowId, bool> =
            self.flows.iter().map(|(&i, f)| (i, f.stalled)).collect();
        for f in self.flows.values_mut() {
            f.rate = 0.0;
        }
        for (_, f) in self.flows.iter() {
            if f.stalled {
                continue;
            }
            for r in &f.resources {
                weight_on[r.0] += f.weight;
            }
        }
        let mut unfrozen = frozen.values().filter(|&&fz| !fz).count();
        while unfrozen > 0 {
            // Find the bottleneck: resource with the least fair share per
            // unit of weight.
            let mut best: Option<(usize, f64)> = None;
            for r in 0..n_res {
                // f64 subtraction of accumulated weights can leave a tiny
                // residue; treat near-zero as "no unfrozen flows here".
                if weight_on[r] <= 1e-9 {
                    continue;
                }
                let fair = residual[r] / weight_on[r];
                match best {
                    Some((_, b)) if fair >= b => {}
                    _ => best = Some((r, fair)),
                }
            }
            let Some((bottleneck, fair)) = best else {
                break; // remaining flows cross only weightless resources: impossible
            };
            let fair = fair.max(0.0);
            // Freeze every unfrozen flow crossing the bottleneck at
            // `fair * weight`.
            let freezing: Vec<FlowId> = self
                .flows
                .iter()
                .filter(|(id, f)| !frozen[id] && f.resources.iter().any(|r| r.0 == bottleneck))
                .map(|(&id, _)| id)
                .collect();
            debug_assert!(!freezing.is_empty());
            for id in freezing {
                let f = self.flows.get_mut(&id).expect("flow vanished");
                f.rate = fair * f.weight;
                frozen.insert(id, true);
                unfrozen -= 1;
                for r in &f.resources {
                    residual[r.0] -= f.rate;
                    weight_on[r.0] -= f.weight;
                }
            }
            // Guard tiny negative residuals from f64 rounding.
            for r in residual.iter_mut() {
                if *r < 0.0 {
                    *r = 0.0;
                }
            }
        }
    }

    /// Sum of rates crossing a resource (for assertions/telemetry).
    pub fn utilization(&self, r: ResourceId) -> f64 {
        self.flows
            .values()
            .filter(|f| f.resources.contains(&r))
            .map(|f| f.rate)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_gets_full_capacity() {
        let mut e = FluidEngine::new();
        let r = e.add_resource(100.0);
        let f = e.start_flow(1000, &[r], 1.0);
        assert_eq!(e.rate(f), Some(100.0));
        assert_eq!(e.next_completion(), Some(10.0));
    }

    #[test]
    fn two_flows_share_a_link_equally() {
        let mut e = FluidEngine::new();
        let r = e.add_resource(100.0);
        let a = e.start_flow(1000, &[r], 1.0);
        let b = e.start_flow(1000, &[r], 1.0);
        assert_eq!(e.rate(a), Some(50.0));
        assert_eq!(e.rate(b), Some(50.0));
    }

    #[test]
    fn weighted_sharing() {
        let mut e = FluidEngine::new();
        let r = e.add_resource(90.0);
        let a = e.start_flow(1000, &[r], 1.0);
        let b = e.start_flow(1000, &[r], 2.0);
        assert!((e.rate(a).unwrap() - 30.0).abs() < 1e-9);
        assert!((e.rate(b).unwrap() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn flow_rate_is_min_across_its_resources() {
        let mut e = FluidEngine::new();
        let fast = e.add_resource(1000.0);
        let slow = e.add_resource(10.0);
        let f = e.start_flow(1000, &[fast, slow], 1.0);
        assert_eq!(e.rate(f), Some(10.0));
    }

    #[test]
    fn classic_max_min_example() {
        // Link L1 cap 10 shared by flows A, B; link L2 cap 100 used by B, C.
        // Max-min: A = B = 5 on L1; C gets 100 - 5 = 95 on L2.
        let mut e = FluidEngine::new();
        let l1 = e.add_resource(10.0);
        let l2 = e.add_resource(100.0);
        let a = e.start_flow(1_000_000, &[l1], 1.0);
        let b = e.start_flow(1_000_000, &[l1, l2], 1.0);
        let c = e.start_flow(1_000_000, &[l2], 1.0);
        assert!((e.rate(a).unwrap() - 5.0).abs() < 1e-9);
        assert!((e.rate(b).unwrap() - 5.0).abs() < 1e-9);
        assert!((e.rate(c).unwrap() - 95.0).abs() < 1e-9);
    }

    #[test]
    fn completion_frees_bandwidth_for_survivors() {
        let mut e = FluidEngine::new();
        let r = e.add_resource(100.0);
        let a = e.start_flow(100, &[r], 1.0); // done after 2s at 50 B/s
        let b = e.start_flow(1000, &[r], 1.0);
        let t = e.next_completion().unwrap();
        assert!((t - 2.0).abs() < 1e-9);
        let done = e.advance(t);
        assert_eq!(done, vec![a]);
        // Survivor now gets the whole link.
        assert_eq!(e.rate(b), Some(100.0));
        assert!((e.remaining(b).unwrap() - 900.0).abs() < 1e-6);
    }

    #[test]
    fn simultaneous_completions_reported_in_id_order() {
        let mut e = FluidEngine::new();
        let r = e.add_resource(100.0);
        let a = e.start_flow(100, &[r], 1.0);
        let b = e.start_flow(100, &[r], 1.0);
        let done = e.advance(2.0);
        assert_eq!(done, vec![a, b]);
        assert_eq!(e.active_flows(), 0);
    }

    #[test]
    fn cancel_returns_unfinished_bytes_and_frees_capacity() {
        let mut e = FluidEngine::new();
        let r = e.add_resource(100.0);
        let a = e.start_flow(1000, &[r], 1.0);
        let b = e.start_flow(1000, &[r], 1.0);
        e.advance(1.0); // each moved 50
        let left = e.cancel_flow(a).unwrap();
        assert_eq!(left, 950);
        assert_eq!(e.rate(b), Some(100.0));
        assert_eq!(e.cancel_flow(a), None, "double cancel");
    }

    #[test]
    fn utilization_never_exceeds_capacity() {
        let mut e = FluidEngine::new();
        let up: Vec<_> = (0..4).map(|_| e.add_resource(117.0)).collect();
        let down: Vec<_> = (0..4).map(|_| e.add_resource(117.0)).collect();
        // All-to-all flows.
        for (s, &u) in up.iter().enumerate() {
            for (d, &dn) in down.iter().enumerate() {
                if s != d {
                    e.start_flow(1_000_000, &[u, dn], 1.0);
                }
            }
        }
        for r in up.iter().chain(down.iter()) {
            assert!(e.utilization(*r) <= 117.0 + 1e-6);
            // Fully loaded symmetric pattern should saturate every link.
            assert!(e.utilization(*r) >= 117.0 - 1e-6);
        }
    }

    #[test]
    fn advance_zero_dt_is_noop() {
        let mut e = FluidEngine::new();
        let r = e.add_resource(10.0);
        let f = e.start_flow(100, &[r], 1.0);
        assert!(e.advance(0.0).is_empty());
        assert_eq!(e.remaining(f), Some(100.0));
    }

    #[test]
    #[should_panic(expected = "at least one resource")]
    fn empty_resource_set_rejected() {
        let mut e = FluidEngine::new();
        e.start_flow(10, &[], 1.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let mut e = FluidEngine::new();
        e.add_resource(0.0);
    }

    #[test]
    fn set_capacity_rescales_rates_immediately() {
        let mut e = FluidEngine::new();
        let r = e.add_resource(100.0);
        let f = e.start_flow(1000, &[r], 1.0);
        assert_eq!(e.rate(f), Some(100.0));
        e.set_capacity(r, 10.0);
        assert_eq!(e.rate(f), Some(10.0));
        assert_eq!(e.capacity(r), 10.0);
        e.set_capacity(r, 100.0);
        assert_eq!(e.rate(f), Some(100.0));
    }

    #[test]
    fn kill_flows_crossing_releases_shares_to_survivors() {
        // Endpoint death: three flows share a link; killing two via the
        // dead endpoint's resource must hand the survivor the full link in
        // the same recompute — no ghost shares.
        let mut e = FluidEngine::new();
        let link = e.add_resource(90.0);
        let dead = e.add_resource(1000.0);
        let a = e.start_flow(1000, &[link, dead], 1.0);
        let b = e.start_flow(1000, &[link, dead], 1.0);
        let c = e.start_flow(1000, &[link], 1.0);
        assert!((e.rate(c).unwrap() - 30.0).abs() < 1e-9);
        e.advance(1.0);
        let killed = e.kill_flows_crossing(&[dead]);
        assert_eq!(
            killed.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
            vec![a, b]
        );
        assert!(killed.iter().all(|&(_, left)| left == 970));
        assert_eq!(e.rate(c), Some(90.0), "survivor gets the whole link");
        assert_eq!(e.active_flows(), 1);
        assert!(e.utilization(dead) == 0.0, "dead resource fully released");
        // Killing with no matching flows is a no-op.
        assert!(e.kill_flows_crossing(&[dead]).is_empty());
    }

    #[test]
    fn stall_and_resume_preserve_delivered_bytes() {
        let mut e = FluidEngine::new();
        let r = e.add_resource(100.0);
        let a = e.start_flow(1000, &[r], 1.0);
        let b = e.start_flow(1000, &[r], 1.0);
        e.advance(1.0); // 50 bytes each
        assert!(e.stall_flow(a));
        assert_eq!(e.is_stalled(a), Some(true));
        // Stalled flow releases its share; survivor gets the whole link.
        assert_eq!(e.rate(a), Some(0.0));
        assert_eq!(e.rate(b), Some(100.0));
        e.advance(1.0);
        assert!(
            (e.remaining(a).unwrap() - 950.0).abs() < 1e-6,
            "no progress while stalled"
        );
        assert!((e.remaining(b).unwrap() - 850.0).abs() < 1e-6);
        // next_completion ignores the stalled flow.
        assert!((e.next_completion().unwrap() - 8.5).abs() < 1e-9);
        assert!(e.resume_flow(a));
        assert_eq!(e.rate(a), Some(50.0));
        assert_eq!(e.rate(b), Some(50.0));
        assert!(!e.stall_flow(FlowId(99)), "unknown flow");
    }

    #[test]
    fn stalled_zero_byte_flow_waits_for_resume() {
        let mut e = FluidEngine::new();
        let r = e.add_resource(10.0);
        let f = e.start_flow(0, &[r], 1.0);
        e.stall_flow(f);
        assert!(e.advance(1.0).is_empty(), "held by the partition");
        e.resume_flow(f);
        assert_eq!(e.advance(0.0), vec![f]);
    }

    #[test]
    fn zero_byte_flow_completes_immediately_on_advance() {
        let mut e = FluidEngine::new();
        let r = e.add_resource(10.0);
        let f = e.start_flow(0, &[r], 1.0);
        assert_eq!(e.next_completion(), Some(0.0));
        let done = e.advance(1e-9);
        assert_eq!(done, vec![f]);
    }
}
