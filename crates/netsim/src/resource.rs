//! Max-min fair fluid sharing of capacitated resources.
//!
//! The core abstraction of the cluster simulator: a set of *resources* (NIC
//! uplinks/downlinks, disks, loopback memory channels), each with a capacity in
//! bytes/second, and a set of *flows*, each of which must push a number of
//! bytes through one or more resources simultaneously (a host-to-host transfer
//! uses the source uplink **and** the destination downlink).
//!
//! Rates are assigned by weighted **progressive filling** (the textbook
//! max-min fairness algorithm): repeatedly find the resource whose fair share
//! per unit weight is smallest, freeze every unfrozen flow crossing it at its
//! fair share, subtract, and repeat. This is how long-lived TCP flows through
//! a non-blocking switch share a Gigabit Ethernet in steady state — exactly
//! the regime of the paper's shuffle measurements.
//!
//! # Incremental recomputation
//!
//! Max-min allocation decomposes over the connected components of the
//! bipartite flow↔resource graph: a flow's rate depends only on the flows it
//! (transitively) shares a resource with. Every mutation (start, cancel,
//! completion batch, capacity change, stall/resume) therefore recomputes only
//! the component(s) reachable from the touched resources, leaving every other
//! flow's rate untouched — and *bit-identical* to what a from-scratch
//! recompute would produce, because within a component the arithmetic
//! (weight accumulation over flows in ascending `FlowId` order, bottleneck
//! scan over resources in ascending index order, freeze batches, residual
//! clamps) is exactly the sequence the full solver would execute restricted
//! to that component. [`FluidEngine::recompute_full`] keeps the from-scratch
//! path alive, and `set_force_full` lets tests and benchmarks run every
//! mutation through it to prove `incremental ≡ full` (see
//! `tests/incremental.rs`).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};

/// Identifies a capacitated resource (e.g. "host 3 uplink").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub usize);

/// Identifies an active flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

#[derive(Debug, Clone)]
struct FlowState {
    remaining: f64,
    resources: Vec<ResourceId>,
    weight: f64,
    rate: f64,
    /// Stalled flows (a link partition holds them) keep their delivered
    /// bytes and their id but get rate 0 and contribute no weight to the
    /// fair-share computation until resumed.
    stalled: bool,
    /// `visit_epoch == Scratch::epoch` ⇔ this flow is already in the
    /// current component — BFS membership without per-recompute set churn.
    visit_epoch: u64,
}

/// Completion-free residual below which a flow counts as finished.
/// (Fluid arithmetic is f64; one byte of slack absorbs rounding.)
const DONE_EPS: f64 = 1e-6;

/// Below this many active flows a scoped recompute never aborts to the
/// full sweep: the graph is so small that even a whole-graph component is
/// cheaper to rate via the scoped path than to pessimize into a full
/// recompute (and tiny graphs would otherwise *always* trip the
/// half-the-flows cutoff — a singleton component is "more than half" of a
/// one-flow graph).
const SCOPED_ABORT_MIN_FLOWS: usize = 8;

/// Work counters for the max-min solver, for perf tracking and the
/// incremental-vs-full acceptance metric (`perf` binary, obs
/// `net.solver.*` counters).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SolverStats {
    /// Rate recomputations performed (scoped or full).
    pub recomputes: u64,
    /// Recomputations that ran the from-scratch path over every resource.
    pub full_recomputes: u64,
    /// Resource fair-share evaluations across all bottleneck scans — the
    /// dominant cost of progressive filling. A full recompute sweeps every
    /// resource once per freeze level; a scoped one only its component.
    pub resources_swept: u64,
    /// Flow rate assignments written (component sizes summed).
    pub flows_rerated: u64,
}

impl SolverStats {
    /// Counter-wise difference (`self - earlier`), for delta publishing.
    pub fn delta_since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            recomputes: self.recomputes - earlier.recomputes,
            full_recomputes: self.full_recomputes - earlier.full_recomputes,
            resources_swept: self.resources_swept - earlier.resources_swept,
            flows_rerated: self.flows_rerated - earlier.flows_rerated,
        }
    }
}

/// Process-wide default for [`FluidEngine::set_force_full`], read once at
/// engine construction. Lets the `perf` harness A/B the incremental solver
/// against the from-scratch one through simulators that build their own
/// engines internally. Set it *before* constructing a simulation; it is a
/// static mode switch, not a source of nondeterminism.
static FORCE_FULL_DEFAULT: AtomicBool = AtomicBool::new(false);

/// Make newly constructed engines recompute from scratch on every mutation
/// (benchmark/verification knob; see [`FORCE_FULL_DEFAULT`]).
pub fn set_force_full_default(on: bool) {
    FORCE_FULL_DEFAULT.store(on, Ordering::SeqCst);
}

/// Reusable buffers for the scoped recompute — component discovery and
/// progressive filling allocate nothing on the steady-state path.
#[derive(Debug, Default)]
struct Scratch {
    /// `res_epoch[r] == epoch` ⇔ resource `r` is in the current component.
    res_epoch: Vec<u64>,
    epoch: u64,
    /// BFS worklist of resource indices.
    queue: Vec<usize>,
    /// Component resources, sorted ascending before filling.
    comp_res: Vec<usize>,
    /// Component flows, sorted ascending by `FlowId` before filling.
    comp_flows: Vec<FlowId>,
    /// Residual capacity / unfrozen weight, indexed by resource id;
    /// only component entries are initialized per recompute.
    residual: Vec<f64>,
    weight_on: Vec<f64>,
    /// Frozen flags parallel to `comp_flows`.
    frozen: Vec<bool>,
    /// Seed-resource buffer reused by mutators.
    seeds: Vec<ResourceId>,
}

/// The fluid engine: resources, flows, and max-min rate assignment.
///
/// Purely computational — time advancement is driven externally (see
/// `netsim::net::Net` for the DES driver).
#[derive(Debug, Default)]
pub struct FluidEngine {
    capacities: Vec<f64>,
    // BTreeMap so iteration order (and therefore f64 accumulation order) is
    // deterministic across runs.
    flows: BTreeMap<FlowId, FlowState>,
    /// Flows (stalled included) crossing each resource — the adjacency used
    /// for component discovery and victim lookup.
    res_flows: Vec<BTreeSet<FlowId>>,
    next_id: u64,
    total_bytes_completed: f64,
    force_full: bool,
    stats: SolverStats,
    /// `Some(v)` memoizes [`Self::next_completion`]; `None` forces a rescan.
    next_cache: Option<Option<f64>>,
    scratch: Scratch,
}

impl FluidEngine {
    /// Engine with no resources.
    pub fn new() -> Self {
        FluidEngine {
            force_full: FORCE_FULL_DEFAULT.load(Ordering::SeqCst),
            next_cache: Some(None),
            ..Self::default()
        }
    }

    /// Add a resource with the given capacity (bytes/sec); returns its id.
    ///
    /// # Panics
    /// Panics unless `capacity` is positive and finite.
    pub fn add_resource(&mut self, capacity: f64) -> ResourceId {
        assert!(
            capacity > 0.0 && capacity.is_finite(),
            "resource capacity must be positive and finite, got {capacity}"
        );
        self.capacities.push(capacity);
        self.res_flows.push(BTreeSet::new());
        ResourceId(self.capacities.len() - 1)
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.capacities.len()
    }

    /// Capacity of a resource.
    pub fn capacity(&self, r: ResourceId) -> f64 {
        self.capacities[r.0]
    }

    /// Solver work counters accumulated since construction (or
    /// [`Self::reset_stats`]).
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Zero the solver work counters.
    pub fn reset_stats(&mut self) {
        self.stats = SolverStats::default();
    }

    /// Route every future mutation through the from-scratch recompute
    /// (`true`) instead of the scoped incremental one (`false`, default).
    /// Rates are bit-identical either way; this exists so tests and the
    /// perf harness can prove and measure exactly that.
    pub fn set_force_full(&mut self, on: bool) {
        self.force_full = on;
    }

    /// Start a flow of `bytes` across `resources` with fairness `weight`
    /// (1.0 = one TCP-stream's worth). Rates react immediately.
    ///
    /// # Panics
    /// Panics if `resources` is empty, contains an unknown id, or `weight`
    /// is not positive.
    pub fn start_flow(&mut self, bytes: u64, resources: &[ResourceId], weight: f64) -> FlowId {
        assert!(
            !resources.is_empty(),
            "flow must cross at least one resource"
        );
        assert!(weight > 0.0 && weight.is_finite());
        for r in resources {
            assert!(r.0 < self.capacities.len(), "unknown resource {r:?}");
        }
        let id = FlowId(self.next_id);
        self.next_id += 1;
        // Deduplicate: a flow crossing the same resource twice would double-
        // count its weight in the fair-share computation.
        let mut resources = resources.to_vec();
        resources.sort_unstable();
        resources.dedup();
        for r in &resources {
            self.res_flows[r.0].insert(id);
        }
        let mut seeds = std::mem::take(&mut self.scratch.seeds);
        seeds.clear();
        seeds.extend_from_slice(&resources);
        self.flows.insert(
            id,
            FlowState {
                remaining: bytes as f64,
                resources,
                weight,
                rate: 0.0,
                stalled: false,
                visit_epoch: 0,
            },
        );
        self.recompute_scoped(&seeds);
        self.scratch.seeds = seeds;
        id
    }

    /// Remove a flow without completing it. Returns the unfinished byte count,
    /// or `None` if the flow is unknown (already completed or cancelled).
    pub fn cancel_flow(&mut self, id: FlowId) -> Option<u64> {
        let st = self.flows.remove(&id)?;
        for r in &st.resources {
            self.res_flows[r.0].remove(&id);
        }
        let mut seeds = std::mem::take(&mut self.scratch.seeds);
        seeds.clear();
        seeds.extend_from_slice(&st.resources);
        self.recompute_scoped(&seeds);
        self.scratch.seeds = seeds;
        Some(st.remaining.max(0.0).round() as u64)
    }

    /// Re-rate a resource mid-simulation (fault injection: a NIC that
    /// renegotiated down, a disk retrying sectors). Rates of the flows in
    /// the resource's component react at the instant of the change.
    ///
    /// # Panics
    /// Panics unless `capacity` is positive and finite.
    pub fn set_capacity(&mut self, r: ResourceId, capacity: f64) {
        assert!(
            capacity > 0.0 && capacity.is_finite(),
            "resource capacity must be positive and finite, got {capacity}"
        );
        self.capacities[r.0] = capacity;
        self.recompute_scoped(&[r]);
    }

    /// Kill every flow crossing any of `resources` (endpoint death: the
    /// host owning them crashed). Returns `(id, unfinished bytes)` per
    /// killed flow in ascending id order. Rates are recomputed **once**, so
    /// the freed bandwidth re-shares to the survivors immediately — no
    /// ghost flows keep holding max-min shares.
    pub fn kill_flows_crossing(&mut self, resources: &[ResourceId]) -> Vec<(FlowId, u64)> {
        let mut victims: BTreeSet<FlowId> = BTreeSet::new();
        for r in resources {
            if let Some(on) = self.res_flows.get(r.0) {
                victims.extend(on.iter().copied());
            }
        }
        let mut out = Vec::with_capacity(victims.len());
        let mut seeds = std::mem::take(&mut self.scratch.seeds);
        seeds.clear();
        for id in victims {
            let st = self.flows.remove(&id).expect("victim flow present");
            for r in &st.resources {
                self.res_flows[r.0].remove(&id);
            }
            seeds.extend_from_slice(&st.resources);
            out.push((id, st.remaining.max(0.0).round() as u64));
        }
        if !out.is_empty() {
            self.recompute_scoped(&seeds);
        }
        self.scratch.seeds = seeds;
        out
    }

    /// Stall a flow: it keeps its id and delivered bytes but gets rate 0 and
    /// stops competing for bandwidth until [`resume_flow`](Self::resume_flow).
    /// Models a link partition holding TCP connections in retransmit backoff.
    /// Returns `false` if the flow is unknown; stalling twice is a no-op.
    pub fn stall_flow(&mut self, id: FlowId) -> bool {
        self.set_stalled(id, true)
    }

    /// Resume a stalled flow; it rejoins the max-min sharing immediately.
    /// Returns `false` if the flow is unknown; resuming a running flow is a
    /// no-op.
    pub fn resume_flow(&mut self, id: FlowId) -> bool {
        self.set_stalled(id, false)
    }

    fn set_stalled(&mut self, id: FlowId, stalled: bool) -> bool {
        match self.flows.get_mut(&id) {
            Some(f) => {
                if f.stalled != stalled {
                    f.stalled = stalled;
                    let mut seeds = std::mem::take(&mut self.scratch.seeds);
                    seeds.clear();
                    seeds.extend_from_slice(&self.flows[&id].resources);
                    self.recompute_scoped(&seeds);
                    self.scratch.seeds = seeds;
                }
                true
            }
            None => false,
        }
    }

    /// Whether a flow is currently stalled; `None` if unknown.
    pub fn is_stalled(&self, id: FlowId) -> Option<bool> {
        self.flows.get(&id).map(|f| f.stalled)
    }

    /// Current rate (bytes/sec) of a flow; `None` if unknown.
    pub fn rate(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.rate)
    }

    /// Remaining bytes of a flow; `None` if unknown.
    pub fn remaining(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.remaining)
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total bytes delivered by completed-or-progressed flows so far.
    pub fn total_bytes_completed(&self) -> f64 {
        self.total_bytes_completed
    }

    /// Advance all flows by `dt_secs`, returning the ids of flows that
    /// completed (in ascending id order — deterministic). All completions in
    /// the batch share **one** scoped recompute seeded by the union of their
    /// resources; the next-completion cache is refreshed in the same pass.
    pub fn advance(&mut self, dt_secs: f64) -> Vec<FlowId> {
        assert!(dt_secs >= 0.0 && dt_secs.is_finite());
        if self.flows.is_empty() {
            self.next_cache = Some(None);
            return Vec::new();
        }
        // NOTE: dt == 0 must still run the completion scan — zero-byte flows
        // complete without time passing, and the DES driver relies on that.
        let mut done = Vec::new();
        let mut next: Option<f64> = None;
        for (&id, f) in self.flows.iter_mut() {
            let moved = f.rate * dt_secs;
            self.total_bytes_completed += moved.min(f.remaining);
            f.remaining -= moved;
            // A stalled flow never completes — even a zero-byte one must wait
            // for the partition to heal before its completion can be observed.
            if !f.stalled && f.remaining <= DONE_EPS {
                done.push(id);
            } else if f.rate > 0.0 {
                let t = (f.remaining / f.rate).max(0.0);
                next = Some(match next {
                    Some(b) if b <= t => b,
                    _ => t,
                });
            }
        }
        if done.is_empty() {
            self.next_cache = Some(next);
            return done;
        }
        let mut seeds = std::mem::take(&mut self.scratch.seeds);
        seeds.clear();
        for id in &done {
            let st = self.flows.remove(id).expect("completed flow present");
            for r in &st.resources {
                self.res_flows[r.0].remove(id);
            }
            seeds.extend_from_slice(&st.resources);
        }
        self.recompute_scoped(&seeds);
        self.scratch.seeds = seeds;
        done
    }

    /// Seconds until the next flow completes at current rates, if any flow is
    /// making progress. Memoized: [`Self::advance`] refreshes the value as a
    /// byproduct of its progress sweep, so back-to-back calls with no
    /// intervening mutation cost O(1) instead of a full flow scan.
    pub fn next_completion(&mut self) -> Option<f64> {
        if let Some(v) = self.next_cache {
            return v;
        }
        let v = self.scan_next_completion();
        self.next_cache = Some(v);
        v
    }

    fn scan_next_completion(&self) -> Option<f64> {
        let mut next: Option<f64> = None;
        for f in self.flows.values() {
            if f.rate > 0.0 {
                let t = (f.remaining / f.rate).max(0.0);
                next = Some(match next {
                    Some(b) if b <= t => b,
                    _ => t,
                });
            }
        }
        next
    }

    /// Recompute only the connected component(s) of the flow↔resource graph
    /// reachable from `seeds` (duplicates allowed). Falls back to
    /// [`Self::recompute_full`] when forced, or when component discovery
    /// finds a *single* connected component covering more than half of all
    /// active flows — at that size the scoped path would redo (nearly) the
    /// whole graph anyway, and the traversal + sort bookkeeping makes it
    /// *slower* than the plain full sweep (the all-to-all shuffle phase
    /// couples every flow into one component, which is exactly the
    /// `solver_ab_mpid` anomaly). Many small seeded components never
    /// trigger the cutoff, however large their union: each one individually
    /// is cheap and the full path would pessimize the disjoint case.
    fn recompute_scoped(&mut self, seeds: &[ResourceId]) {
        if self.force_full {
            self.recompute_full();
            return;
        }
        let n_res = self.capacities.len();
        let mut scr = std::mem::take(&mut self.scratch);
        scr.res_epoch.resize(n_res, 0);
        scr.epoch += 1;
        let epoch = scr.epoch;
        scr.queue.clear();
        scr.comp_res.clear();
        scr.comp_flows.clear();
        // Traversal: resources connect to resources through non-stalled
        // flows (a stalled flow contributes no weight anywhere, so it
        // cannot couple two resources' allocations — but it still belongs
        // to the component for the rate-zeroing pass below). Flow
        // membership is an epoch stamp on the flow itself, not a set
        // insert. One traversal per unvisited seed, so each seed's
        // component size is known individually for the cutoff.
        let n_flows = self.flows.len();
        let abort_at = if n_flows >= SCOPED_ABORT_MIN_FLOWS {
            n_flows / 2
        } else {
            usize::MAX
        };
        let mut oversized = false;
        'seeds: for seed in seeds {
            if scr.res_epoch[seed.0] == epoch {
                continue;
            }
            scr.res_epoch[seed.0] = epoch;
            scr.queue.push(seed.0);
            scr.comp_res.push(seed.0);
            let comp_start = scr.comp_flows.len();
            while let Some(r) = scr.queue.pop() {
                for &fid in &self.res_flows[r] {
                    let f = self.flows.get_mut(&fid).expect("indexed flow present");
                    if f.visit_epoch == epoch {
                        continue;
                    }
                    f.visit_epoch = epoch;
                    scr.comp_flows.push(fid);
                    if scr.comp_flows.len() - comp_start > abort_at {
                        oversized = true;
                        break 'seeds;
                    }
                    if !f.stalled {
                        for rr in &f.resources {
                            if scr.res_epoch[rr.0] != epoch {
                                scr.res_epoch[rr.0] = epoch;
                                scr.queue.push(rr.0);
                                scr.comp_res.push(rr.0);
                            }
                        }
                    }
                }
            }
        }
        if oversized {
            scr.queue.clear();
            self.scratch = scr;
            self.recompute_full();
            return;
        }
        self.next_cache = None;
        self.stats.recomputes += 1;
        scr.comp_res.sort_unstable();
        scr.comp_flows.sort_unstable();
        self.fill(&mut scr);
        self.scratch = scr;
    }

    /// From-scratch recompute over every resource and flow — the reference
    /// the scoped path is proven against, kept callable for tests and the
    /// perf harness's A/B mode.
    pub fn recompute_full(&mut self) {
        self.next_cache = None;
        self.stats.recomputes += 1;
        self.stats.full_recomputes += 1;
        let mut scr = std::mem::take(&mut self.scratch);
        scr.comp_res.clear();
        scr.comp_res.extend(0..self.capacities.len());
        scr.comp_flows.clear();
        scr.comp_flows.extend(self.flows.keys().copied());
        self.fill(&mut scr);
        self.scratch = scr;
    }

    /// Weighted progressive filling over `scr.comp_res` (ascending resource
    /// indices) and `scr.comp_flows` (ascending flow ids). Restricting both
    /// to one connected component executes the identical f64 operation
    /// sequence the whole-graph filling would on that component, which is
    /// what makes the scoped recompute bit-identical to the full one.
    fn fill(&mut self, scr: &mut Scratch) {
        let n_res = self.capacities.len();
        scr.residual.resize(n_res, 0.0);
        scr.weight_on.resize(n_res, 0.0);
        for &r in &scr.comp_res {
            scr.residual[r] = self.capacities[r];
            scr.weight_on[r] = 0.0;
        }
        scr.frozen.clear();
        scr.frozen.resize(scr.comp_flows.len(), false);
        // Stalled flows are pre-frozen at rate 0 and contribute no weight:
        // a partitioned connection neither moves bytes nor holds shares.
        let mut unfrozen = 0usize;
        for (i, &id) in scr.comp_flows.iter().enumerate() {
            let f = self.flows.get_mut(&id).expect("component flow present");
            f.rate = 0.0;
            if f.stalled {
                scr.frozen[i] = true;
            } else {
                unfrozen += 1;
                for r in &f.resources {
                    scr.weight_on[r.0] += f.weight;
                }
            }
        }
        self.stats.flows_rerated += scr.comp_flows.len() as u64;
        while unfrozen > 0 {
            // Find the bottleneck: resource with the least fair share per
            // unit of weight.
            self.stats.resources_swept += scr.comp_res.len() as u64;
            let mut best: Option<(usize, f64)> = None;
            for &r in &scr.comp_res {
                // f64 subtraction of accumulated weights can leave a tiny
                // residue; treat near-zero as "no unfrozen flows here".
                if scr.weight_on[r] <= 1e-9 {
                    continue;
                }
                let fair = scr.residual[r] / scr.weight_on[r];
                match best {
                    Some((_, b)) if fair >= b => {}
                    _ => best = Some((r, fair)),
                }
            }
            let Some((bottleneck, fair)) = best else {
                break; // remaining flows cross only weightless resources: impossible
            };
            let fair = fair.max(0.0);
            // Freeze every unfrozen flow crossing the bottleneck at
            // `fair * weight`.
            let mut froze_any = false;
            for (i, &id) in scr.comp_flows.iter().enumerate() {
                if scr.frozen[i] {
                    continue;
                }
                let f = self.flows.get_mut(&id).expect("component flow present");
                if !f.resources.iter().any(|r| r.0 == bottleneck) {
                    continue;
                }
                f.rate = fair * f.weight;
                scr.frozen[i] = true;
                froze_any = true;
                unfrozen -= 1;
                for r in &f.resources {
                    scr.residual[r.0] -= f.rate;
                    scr.weight_on[r.0] -= f.weight;
                }
            }
            debug_assert!(froze_any, "bottleneck with weight but no flows");
            // Guard tiny negative residuals from f64 rounding.
            for &r in &scr.comp_res {
                if scr.residual[r] < 0.0 {
                    scr.residual[r] = 0.0;
                }
            }
        }
    }

    /// Sum of rates crossing a resource (for assertions/telemetry).
    pub fn utilization(&self, r: ResourceId) -> f64 {
        self.flows
            .values()
            .filter(|f| f.resources.contains(&r))
            .map(|f| f.rate)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_gets_full_capacity() {
        let mut e = FluidEngine::new();
        let r = e.add_resource(100.0);
        let f = e.start_flow(1000, &[r], 1.0);
        assert_eq!(e.rate(f), Some(100.0));
        assert_eq!(e.next_completion(), Some(10.0));
    }

    #[test]
    fn two_flows_share_a_link_equally() {
        let mut e = FluidEngine::new();
        let r = e.add_resource(100.0);
        let a = e.start_flow(1000, &[r], 1.0);
        let b = e.start_flow(1000, &[r], 1.0);
        assert_eq!(e.rate(a), Some(50.0));
        assert_eq!(e.rate(b), Some(50.0));
    }

    #[test]
    fn weighted_sharing() {
        let mut e = FluidEngine::new();
        let r = e.add_resource(90.0);
        let a = e.start_flow(1000, &[r], 1.0);
        let b = e.start_flow(1000, &[r], 2.0);
        assert!((e.rate(a).unwrap() - 30.0).abs() < 1e-9);
        assert!((e.rate(b).unwrap() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn flow_rate_is_min_across_its_resources() {
        let mut e = FluidEngine::new();
        let fast = e.add_resource(1000.0);
        let slow = e.add_resource(10.0);
        let f = e.start_flow(1000, &[fast, slow], 1.0);
        assert_eq!(e.rate(f), Some(10.0));
    }

    #[test]
    fn classic_max_min_example() {
        // Link L1 cap 10 shared by flows A, B; link L2 cap 100 used by B, C.
        // Max-min: A = B = 5 on L1; C gets 100 - 5 = 95 on L2.
        let mut e = FluidEngine::new();
        let l1 = e.add_resource(10.0);
        let l2 = e.add_resource(100.0);
        let a = e.start_flow(1_000_000, &[l1], 1.0);
        let b = e.start_flow(1_000_000, &[l1, l2], 1.0);
        let c = e.start_flow(1_000_000, &[l2], 1.0);
        assert!((e.rate(a).unwrap() - 5.0).abs() < 1e-9);
        assert!((e.rate(b).unwrap() - 5.0).abs() < 1e-9);
        assert!((e.rate(c).unwrap() - 95.0).abs() < 1e-9);
    }

    #[test]
    fn completion_frees_bandwidth_for_survivors() {
        let mut e = FluidEngine::new();
        let r = e.add_resource(100.0);
        let a = e.start_flow(100, &[r], 1.0); // done after 2s at 50 B/s
        let b = e.start_flow(1000, &[r], 1.0);
        let t = e.next_completion().unwrap();
        assert!((t - 2.0).abs() < 1e-9);
        let done = e.advance(t);
        assert_eq!(done, vec![a]);
        // Survivor now gets the whole link.
        assert_eq!(e.rate(b), Some(100.0));
        assert!((e.remaining(b).unwrap() - 900.0).abs() < 1e-6);
    }

    #[test]
    fn simultaneous_completions_reported_in_id_order() {
        let mut e = FluidEngine::new();
        let r = e.add_resource(100.0);
        let a = e.start_flow(100, &[r], 1.0);
        let b = e.start_flow(100, &[r], 1.0);
        let done = e.advance(2.0);
        assert_eq!(done, vec![a, b]);
        assert_eq!(e.active_flows(), 0);
    }

    #[test]
    fn cancel_returns_unfinished_bytes_and_frees_capacity() {
        let mut e = FluidEngine::new();
        let r = e.add_resource(100.0);
        let a = e.start_flow(1000, &[r], 1.0);
        let b = e.start_flow(1000, &[r], 1.0);
        e.advance(1.0); // each moved 50
        let left = e.cancel_flow(a).unwrap();
        assert_eq!(left, 950);
        assert_eq!(e.rate(b), Some(100.0));
        assert_eq!(e.cancel_flow(a), None, "double cancel");
    }

    #[test]
    fn utilization_never_exceeds_capacity() {
        let mut e = FluidEngine::new();
        let up: Vec<_> = (0..4).map(|_| e.add_resource(117.0)).collect();
        let down: Vec<_> = (0..4).map(|_| e.add_resource(117.0)).collect();
        // All-to-all flows.
        for (s, &u) in up.iter().enumerate() {
            for (d, &dn) in down.iter().enumerate() {
                if s != d {
                    e.start_flow(1_000_000, &[u, dn], 1.0);
                }
            }
        }
        for r in up.iter().chain(down.iter()) {
            assert!(e.utilization(*r) <= 117.0 + 1e-6);
            // Fully loaded symmetric pattern should saturate every link.
            assert!(e.utilization(*r) >= 117.0 - 1e-6);
        }
    }

    #[test]
    fn advance_zero_dt_is_noop() {
        let mut e = FluidEngine::new();
        let r = e.add_resource(10.0);
        let f = e.start_flow(100, &[r], 1.0);
        assert!(e.advance(0.0).is_empty());
        assert_eq!(e.remaining(f), Some(100.0));
    }

    #[test]
    #[should_panic(expected = "at least one resource")]
    fn empty_resource_set_rejected() {
        let mut e = FluidEngine::new();
        e.start_flow(10, &[], 1.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let mut e = FluidEngine::new();
        e.add_resource(0.0);
    }

    #[test]
    fn set_capacity_rescales_rates_immediately() {
        let mut e = FluidEngine::new();
        let r = e.add_resource(100.0);
        let f = e.start_flow(1000, &[r], 1.0);
        assert_eq!(e.rate(f), Some(100.0));
        e.set_capacity(r, 10.0);
        assert_eq!(e.rate(f), Some(10.0));
        assert_eq!(e.capacity(r), 10.0);
        e.set_capacity(r, 100.0);
        assert_eq!(e.rate(f), Some(100.0));
    }

    #[test]
    fn kill_flows_crossing_releases_shares_to_survivors() {
        // Endpoint death: three flows share a link; killing two via the
        // dead endpoint's resource must hand the survivor the full link in
        // the same recompute — no ghost shares.
        let mut e = FluidEngine::new();
        let link = e.add_resource(90.0);
        let dead = e.add_resource(1000.0);
        let a = e.start_flow(1000, &[link, dead], 1.0);
        let b = e.start_flow(1000, &[link, dead], 1.0);
        let c = e.start_flow(1000, &[link], 1.0);
        assert!((e.rate(c).unwrap() - 30.0).abs() < 1e-9);
        e.advance(1.0);
        let killed = e.kill_flows_crossing(&[dead]);
        assert_eq!(
            killed.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
            vec![a, b]
        );
        assert!(killed.iter().all(|&(_, left)| left == 970));
        assert_eq!(e.rate(c), Some(90.0), "survivor gets the whole link");
        assert_eq!(e.active_flows(), 1);
        assert!(e.utilization(dead) == 0.0, "dead resource fully released");
        // Killing with no matching flows is a no-op.
        assert!(e.kill_flows_crossing(&[dead]).is_empty());
    }

    #[test]
    fn stall_and_resume_preserve_delivered_bytes() {
        let mut e = FluidEngine::new();
        let r = e.add_resource(100.0);
        let a = e.start_flow(1000, &[r], 1.0);
        let b = e.start_flow(1000, &[r], 1.0);
        e.advance(1.0); // 50 bytes each
        assert!(e.stall_flow(a));
        assert_eq!(e.is_stalled(a), Some(true));
        // Stalled flow releases its share; survivor gets the whole link.
        assert_eq!(e.rate(a), Some(0.0));
        assert_eq!(e.rate(b), Some(100.0));
        e.advance(1.0);
        assert!(
            (e.remaining(a).unwrap() - 950.0).abs() < 1e-6,
            "no progress while stalled"
        );
        assert!((e.remaining(b).unwrap() - 850.0).abs() < 1e-6);
        // next_completion ignores the stalled flow.
        assert!((e.next_completion().unwrap() - 8.5).abs() < 1e-9);
        assert!(e.resume_flow(a));
        assert_eq!(e.rate(a), Some(50.0));
        assert_eq!(e.rate(b), Some(50.0));
        assert!(!e.stall_flow(FlowId(99)), "unknown flow");
    }

    #[test]
    fn stalled_zero_byte_flow_waits_for_resume() {
        let mut e = FluidEngine::new();
        let r = e.add_resource(10.0);
        let f = e.start_flow(0, &[r], 1.0);
        e.stall_flow(f);
        assert!(e.advance(1.0).is_empty(), "held by the partition");
        e.resume_flow(f);
        assert_eq!(e.advance(0.0), vec![f]);
    }

    #[test]
    fn zero_byte_flow_completes_immediately_on_advance() {
        let mut e = FluidEngine::new();
        let r = e.add_resource(10.0);
        let f = e.start_flow(0, &[r], 1.0);
        assert_eq!(e.next_completion(), Some(0.0));
        let done = e.advance(1e-9);
        assert_eq!(done, vec![f]);
    }

    #[test]
    fn scoped_recompute_leaves_other_components_untouched() {
        // Two disjoint components; mutating one must not re-rate the other.
        let mut e = FluidEngine::new();
        let l1 = e.add_resource(10.0);
        let l2 = e.add_resource(100.0);
        let a = e.start_flow(1_000, &[l1], 1.0);
        let rerated_before = e.stats().flows_rerated;
        let b = e.start_flow(1_000, &[l2], 1.0);
        // Starting `b` re-rates only `b`'s singleton component.
        assert_eq!(e.stats().flows_rerated - rerated_before, 1);
        assert_eq!(e.rate(a), Some(10.0));
        assert_eq!(e.rate(b), Some(100.0));
        e.set_capacity(l2, 50.0);
        assert_eq!(e.rate(a), Some(10.0));
        assert_eq!(e.rate(b), Some(50.0));
        assert_eq!(e.stats().full_recomputes, 0);
    }

    #[test]
    fn incremental_sweeps_fewer_resources_than_full() {
        // Many independent single-resource components: scoped recompute
        // touches one resource per mutation, the full path all of them.
        let build = |force_full: bool| {
            let mut e = FluidEngine::new();
            e.set_force_full(force_full);
            let rs: Vec<_> = (0..32).map(|_| e.add_resource(100.0)).collect();
            for round in 0..4 {
                for r in &rs {
                    e.start_flow(50 + round, &[*r], 1.0);
                }
            }
            while e.next_completion().is_some() {
                let dt = e.next_completion().unwrap();
                e.advance(dt);
            }
            e.stats()
        };
        let inc = build(false);
        let full = build(true);
        assert_eq!(inc.full_recomputes, 0);
        assert_eq!(full.full_recomputes, full.recomputes);
        assert!(
            inc.resources_swept * 5 <= full.resources_swept,
            "scoped sweeps {} not ≥5x below full {}",
            inc.resources_swept,
            full.resources_swept
        );
    }

    #[test]
    fn recompute_full_is_idempotent_on_converged_rates() {
        let mut e = FluidEngine::new();
        let l1 = e.add_resource(10.0);
        let l2 = e.add_resource(100.0);
        let a = e.start_flow(1_000_000, &[l1], 1.0);
        let b = e.start_flow(1_000_000, &[l1, l2], 1.0);
        let c = e.start_flow(1_000_000, &[l2], 1.0);
        let rates = |e: &FluidEngine| [a, b, c].map(|f| e.rate(f).unwrap().to_bits());
        let before = rates(&e);
        e.recompute_full();
        assert_eq!(before, rates(&e), "full recompute is a fixpoint");
    }

    #[test]
    fn next_completion_cache_tracks_mutations() {
        let mut e = FluidEngine::new();
        let r = e.add_resource(100.0);
        let a = e.start_flow(1000, &[r], 1.0);
        assert_eq!(e.next_completion(), Some(10.0));
        assert_eq!(e.next_completion(), Some(10.0), "memoized");
        e.start_flow(500, &[r], 1.0);
        assert_eq!(e.next_completion(), Some(10.0), "both at 50 B/s");
        e.advance(2.0);
        assert_eq!(e.next_completion(), Some(8.0), "refreshed by advance");
        e.cancel_flow(a);
        assert_eq!(e.next_completion(), Some(4.0), "400 left at 100 B/s");
        e.advance(4.0);
        assert_eq!(e.next_completion(), None);
    }
}
