//! Coarse per-job execution plans for the serving simulator.
//!
//! A [`JobPlan`] is the contract between a stack's single-job simulator
//! (hadoop-sim, `mapred::sim`) and the multi-job serving master in the
//! `serve` crate: each stack distils a [`crate::JobSpec`] plus its own
//! configuration into a sequence of barrier-separated phases, and the master
//! executes those phases on whatever slice of the shared cluster the
//! scheduler granted, through one shared [`crate::Net`]. Within a phase the
//! CPU work and the flow pattern run concurrently (a phase ends when both
//! finish); phases are sequential.
//!
//! The plan deliberately abstracts away per-task bookkeeping — the detailed
//! simulators remain the ground truth for single-job makespans — but keeps
//! the parts that matter under contention: total bytes moved per pattern,
//! aggregate CPU seconds, and per-stack setup overhead. Both stacks' plans
//! for the same spec move identical logical volumes, which is what lets
//! `figserve --check` assert Hadoop-vs-MPI-D job-output identity.

/// The flow pattern a phase drives through the shared cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseFlows {
    /// No network or disk traffic; the phase is pure CPU (plus setup).
    None,
    /// Each granted host streams an equal share of `bytes` off its own disk.
    DiskReadEach,
    /// Every granted host sends an equal share of `bytes` to every other
    /// granted host (the shuffle). Cross-rack pairs traverse the core.
    ShuffleAllToAll,
    /// Each granted host writes an equal share of `bytes` to its own disk,
    /// then ships `copies - 1` replicas to distinct peers.
    WriteReplicated {
        /// Total number of copies, local write included.
        copies: usize,
    },
}

/// One barrier-separated phase of a job: CPU work concurrent with a flow
/// pattern. `label` must be a registered `obs::names` span constant so the
/// serving master can emit it directly.
#[derive(Debug, Clone)]
pub struct JobPhase {
    /// Phase name (an `obs::names` span constant).
    pub label: &'static str,
    /// Aggregate CPU seconds per granted host for this phase.
    pub cpu_secs: f64,
    /// Total bytes moved by `flows`, split evenly across the granted hosts.
    pub bytes: u64,
    /// The traffic pattern carrying `bytes`.
    pub flows: PhaseFlows,
}

/// A stack's plan for one job on `n` granted hosts: fixed setup cost, then
/// the phases in order.
#[derive(Debug, Clone)]
pub struct JobPlan {
    /// Per-job fixed overhead (submission, JVM/process start, master RPCs)
    /// charged before the first phase.
    pub setup_secs: f64,
    /// Barrier-separated phases, executed in order.
    pub phases: Vec<JobPhase>,
}

impl JobPlan {
    /// Panic if the plan is internally inconsistent.
    pub fn validate(&self) {
        assert!(
            self.setup_secs.is_finite() && self.setup_secs >= 0.0,
            "setup_secs must be finite and non-negative"
        );
        assert!(!self.phases.is_empty(), "a plan needs at least one phase");
        for p in &self.phases {
            assert!(
                p.cpu_secs.is_finite() && p.cpu_secs >= 0.0,
                "phase {} cpu_secs must be finite and non-negative",
                p.label
            );
            if let PhaseFlows::WriteReplicated { copies } = p.flows {
                assert!(copies >= 1, "phase {} needs at least one copy", p.label);
            }
            if p.flows != PhaseFlows::None {
                assert!(p.bytes > 0, "phase {} moves flows but zero bytes", p.label);
            }
        }
    }

    /// Total bytes moved across all phases (replicas not multiplied in).
    pub fn total_bytes(&self) -> u64 {
        self.phases.iter().map(|p| p.bytes).sum()
    }

    /// Bytes written by the final [`PhaseFlows::WriteReplicated`] phase —
    /// the job's logical output, identical across stacks for one spec.
    pub fn output_bytes(&self) -> u64 {
        self.phases
            .iter()
            .rev()
            .find(|p| matches!(p.flows, PhaseFlows::WriteReplicated { .. }))
            .map(|p| p.bytes)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> JobPlan {
        JobPlan {
            setup_secs: 1.0,
            phases: vec![
                JobPhase {
                    label: "map",
                    cpu_secs: 2.0,
                    bytes: 100,
                    flows: PhaseFlows::DiskReadEach,
                },
                JobPhase {
                    label: "reduce",
                    cpu_secs: 1.0,
                    bytes: 40,
                    flows: PhaseFlows::WriteReplicated { copies: 3 },
                },
            ],
        }
    }

    #[test]
    fn plan_accounting() {
        let p = plan();
        p.validate();
        assert_eq!(p.total_bytes(), 140);
        assert_eq!(p.output_bytes(), 40);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_plan_rejected() {
        JobPlan {
            setup_secs: 0.0,
            phases: vec![],
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "zero bytes")]
    fn zero_byte_flow_phase_rejected() {
        let mut p = plan();
        p.phases[0].bytes = 0;
        p.validate();
    }
}
