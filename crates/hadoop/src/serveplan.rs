//! Multi-job entry point: distil a [`HadoopConfig`] + [`JobSpec`] into the
//! coarse [`JobPlan`] the serving master executes on a shared cluster.
//!
//! The detailed per-task simulator in [`crate::sim`] owns one whole cluster
//! per job; under a serving workload many jobs share one [`netsim::Net`], so
//! each stack instead summarizes a job as barrier-separated phases (data
//! volumes, aggregate CPU, fixed overheads). The Hadoop plan keeps the overheads
//! the paper attributes the stack's latency floor to: job setup, per-wave
//! JVM launches, heartbeat-quantized scheduling, per-fetch seek/HTTP costs
//! in the copy phase, and 3× replicated output.

use crate::HadoopConfig;
use desim::SimTime;
use netsim::{JobPhase, JobPlan, JobSpec, PhaseFlows, SimShuffle};

/// The serving-master plan for running `spec` on `n_hosts` granted worker
/// hosts under this configuration. Phase labels are `obs::names` constants.
pub fn serve_plan(cfg: &HadoopConfig, spec: &JobSpec, n_hosts: usize) -> JobPlan {
    assert!(n_hosts > 0, "a job needs at least one host");
    let n = n_hosts as f64;
    let n_maps = spec.input_bytes.div_ceil(cfg.block_bytes).max(1);
    let map_waves = n_maps.div_ceil((n_hosts * cfg.map_slots) as u64).max(1);
    // Scheduling quantization: each wave waits half a heartbeat on average
    // for its slot assignments, then pays a JVM launch.
    let wave_overhead = cfg.jvm_start.as_secs_f64() + cfg.heartbeat.as_secs_f64() / 2.0;

    // Per-job shuffle strategy (deployment knob wins): in-node combining
    // shrinks both wire and reducer-input volume by merging the spills of
    // the `map_slots` co-located map tasks; coded multicast shrinks only
    // the wire, at `r`× the map work.
    let strat = SimShuffle::resolve(cfg.shuffle, spec.shuffle);
    let data = strat.data_factor(cfg.map_slots, spec.combine_ratio);
    let shuffle = ((spec.shuffle_bytes(spec.input_bytes) as f64) * data).round() as u64;
    let shuffle = shuffle.max(1);
    let wire = (((shuffle as f64) * strat.code_factor()).round() as u64).max(1);
    let innode_cpu = if strat == SimShuffle::InNodeCombine {
        spec.shuffle_bytes(spec.input_bytes) as f64 * spec.combine_cpu_ns_per_byte * 1e-9 / n
    } else {
        0.0
    };
    let n_reduces = (cfg.n_reduces.max(1) as u64).min(n_hosts as u64 * cfg.reduce_slots as u64);
    // Every reducer fetches a partition of every map output: a short seek
    // into the spill file plus the HTTP round, divided over the hosts
    // fetching in parallel.
    let per_fetch = cfg.fetch_seek.as_secs_f64() + cfg.http_setup.as_secs_f64();
    let fetch_overhead = (n_maps * n_reduces) as f64 * per_fetch / n;

    let output = spec.output_bytes(shuffle).max(1);
    JobPlan {
        setup_secs: cfg.job_setup.as_secs_f64(),
        phases: vec![
            JobPhase {
                label: obs::names::SPAN_MAP,
                cpu_secs: spec.map_cpu_secs(spec.input_bytes) * strat.map_work_factor() / n
                    + innode_cpu
                    + map_waves as f64 * wave_overhead,
                bytes: spec.input_bytes.max(1),
                flows: PhaseFlows::DiskReadEach,
            },
            JobPhase {
                label: obs::names::SPAN_COPY,
                cpu_secs: fetch_overhead,
                bytes: wire,
                flows: PhaseFlows::ShuffleAllToAll,
            },
            JobPhase {
                label: obs::names::SPAN_REDUCE,
                cpu_secs: spec.reduce_cpu_secs(shuffle) / n
                    + cfg.jvm_start.as_secs_f64()
                    + cfg.job_cleanup.as_secs_f64(),
                bytes: output,
                flows: PhaseFlows::WriteReplicated {
                    copies: cfg.replication,
                },
            },
        ],
    }
}

/// Failure-detection latency of the serving master for this stack: a worker
/// is declared lost after missing heartbeats (0.20.2 waits several
/// intervals; the paper's recovery discussion hinges on this being seconds,
/// not milliseconds).
pub fn detect_delay(cfg: &HadoopConfig) -> SimTime {
    SimTime::from_nanos(3 * cfg.heartbeat.as_nanos())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wc_like(input_bytes: u64) -> JobSpec {
        JobSpec {
            name: "wordcount".into(),
            input_bytes,
            record_bytes: 80,
            map_cpu_ns_per_byte: 620.0,
            map_output_ratio: 1.8,
            combine_ratio: 0.1,
            combine_cpu_ns_per_byte: 30.0,
            reduce_cpu_ns_per_byte: 100.0,
            output_ratio: 1.0,
            shuffle: SimShuffle::Baseline,
        }
    }

    #[test]
    fn plan_shape_and_volumes() {
        let cfg = HadoopConfig::icpp2011(8, 4, 14);
        let spec = wc_like(1 << 30);
        let plan = serve_plan(&cfg, &spec, 8);
        plan.validate();
        assert_eq!(plan.phases.len(), 3);
        assert_eq!(plan.phases[0].bytes, 1 << 30);
        assert_eq!(plan.phases[1].bytes, spec.shuffle_bytes(1 << 30));
        assert_eq!(plan.output_bytes(), spec.output_bytes(plan.phases[1].bytes));
        assert!(plan.setup_secs >= cfg.job_setup.as_secs_f64());
        // More hosts ⇒ less per-host map CPU.
        let wide = serve_plan(&cfg, &spec, 32);
        assert!(wide.phases[0].cpu_secs < plan.phases[0].cpu_secs);
    }

    #[test]
    fn strategies_shrink_the_copy_phase() {
        let cfg = HadoopConfig::icpp2011(8, 4, 14);
        let base = serve_plan(&cfg, &wc_like(1 << 30), 8);

        let mut spec = wc_like(1 << 30);
        spec.shuffle = SimShuffle::InNodeCombine;
        let innode = serve_plan(&cfg, &spec, 8);
        assert!(innode.phases[1].bytes < base.phases[1].bytes);
        // The reducer input shrank too: less reduce CPU.
        assert!(innode.phases[2].cpu_secs < base.phases[2].cpu_secs);

        let mut spec = wc_like(1 << 30);
        spec.shuffle = SimShuffle::Coded { r: 2 };
        let coded = serve_plan(&cfg, &spec, 8);
        let half = base.phases[1].bytes / 2;
        assert!(coded.phases[1].bytes.abs_diff(half) <= 1);
        // Coded pays the wire savings back as replicated map work.
        assert!(coded.phases[0].cpu_secs > base.phases[0].cpu_secs);
        // ...but reducers still decode (and reduce) the full volume.
        assert_eq!(coded.phases[2].cpu_secs, base.phases[2].cpu_secs);

        // A deployment-level knob overrides the per-job baseline.
        let mut cfg2 = HadoopConfig::icpp2011(8, 4, 14);
        cfg2.shuffle = SimShuffle::InNodeCombine;
        let forced = serve_plan(&cfg2, &wc_like(1 << 30), 8);
        assert_eq!(forced.phases[1].bytes, innode.phases[1].bytes);
    }

    #[test]
    fn detect_delay_spans_missed_heartbeats() {
        let cfg = HadoopConfig::icpp2011(8, 4, 14);
        assert_eq!(detect_delay(&cfg), SimTime::from_secs(9));
    }
}
