//! The Hadoop 0.20.2 MapReduce execution pipeline as a discrete-event
//! simulation over `netsim`.
//!
//! Modelled mechanisms (each one is load-bearing for a paper result):
//!
//! * **Heartbeat scheduling** — a freed slot is refilled only at its
//!   tasktracker's next 3 s heartbeat, one map + one reduce per beat
//!   (0.20's `JobQueueTaskScheduler`). This is the fixed overhead that makes
//!   small jobs slow (Figure 6 at 1 GB).
//! * **Per-task JVM launch** and **job setup/cleanup tasks**.
//! * **HDFS locality** — blocks are placed round-robin across workers;
//!   trackers prefer local maps; remote maps stream the block over the NIC.
//! * **Map-side spills** — map output is sorted/spilled through
//!   `io.sort.mb`; outputs larger than the buffer pay an extra on-disk merge
//!   pass.
//! * **Shuffle copy** — every reducer fetches its partition of *every* map
//!   output over HTTP from the serving tasktracker. Each fetch costs a disk
//!   seek into the spill file plus servlet overhead; fetches run
//!   `parallel.copies` at a time. With thousands of reducers these
//!   seek-dominated small reads are what make the copy stage consume most
//!   of the job (Figure 1 / Table I). Reducers scheduled before the map
//!   phase ends (slowstart 5 %) sit in copy waiting for maps — the first
//!   `workers × reduce_slots` reducers show copy times of the whole map
//!   phase, exactly the 56 outliers the paper trims from Figure 1.
//! * **Reduce-side merge** — in-memory when the per-reducer shuffle volume
//!   fits the merge buffer (the paper's 0.01 s "sort" stage), on-disk merge
//!   passes otherwise.
//!
//! Fetches are batched per `(serving host, reducer)` — a batch claims every
//! currently-available unfetched map output on one host and pays
//! `count × (seek + servlet)` on the serving disk. This preserves the
//! per-fetch cost structure while keeping the event count tractable at the
//! paper's 2 345-reducer scale.

use crate::config::HadoopConfig;
use crate::hdfs::{BlockId, NameNode};
use crate::report::{JobReport, MapSpan, ReduceSpan};
use desim::rng::SplitMix64;
use desim::stats::OnlineStats;
use desim::{Scheduler, Sim, SimTime};
use faults::{FaultKind, FaultPlan};
use netsim::{Cluster, FlowId, HasNet, HostId, JobSpec, Net, Route, SimShuffle};
use obs::{ArgValue, Tracer};
use std::collections::BTreeMap;

/// Thread lane offset separating reducer spans from map spans on the same
/// host lane in exported traces (map tid = map index; reduce tid = this + r).
const REDUCE_TID_BASE: u32 = 1 << 20;

/// Simulation state for one Hadoop job execution.
pub struct HadoopSim {
    net: Net<HadoopSim>,
    cfg: HadoopConfig,
    spec: JobSpec,
    rng: SplitMix64,

    // Static job layout.
    n_maps: usize,
    hdfs: NameNode,
    blocks: Vec<BlockId>, // map m reads blocks[m]
    map_input: Vec<u64>,
    per_reduce_partition: Vec<u64>, // shuffled bytes of map m going to each reducer
    // Resolved shuffle strategy and its factors (1.0 at baseline, keeping
    // that path bit-identical). `data_factor` is already folded into
    // `per_reduce_partition`; `code_factor` deflates only the fetch flows.
    shuffle: SimShuffle,
    data_factor: f64,
    code_factor: f64,

    // Scheduling state.
    setup_done: bool,
    pending_maps: Vec<usize>,
    pending_reduces: Vec<usize>,
    free_map_slots: Vec<usize>,    // indexed by worker (host-1)
    free_reduce_slots: Vec<usize>, // indexed by worker (host-1)

    // Progress.
    maps_done: usize,
    reduces_done: usize,
    map_out_ready: Vec<bool>,
    map_out_host: Vec<HostId>,
    copiers: Vec<Option<CopyState>>, // indexed by reduce id while copying
    waiting_reducers: Vec<usize>,
    // Speculative execution bookkeeping.
    map_started: Vec<Option<SimTime>>,
    map_speculated: Vec<bool>,
    map_attempts: Vec<usize>,
    completed_map_durations: OnlineStats,
    /// Per-task progress (0.0 queued → 1.0 output committed), the
    /// jobtracker-side signal real speculation heuristics key off.
    map_progress: Vec<f64>,

    // Fault-injection state. With an empty plan (`faulty == false`) none of
    // it is ever touched, keeping the no-fault path byte-identical.
    plan: FaultPlan,
    faulty: bool,
    worker_alive: Vec<bool>,
    /// Map attempts currently executing, as `(map, worker)` pairs.
    running_map_attempts: Vec<(usize, usize)>,
    /// In-flight remote input reads: flow → `(map, reading worker)`.
    /// Entries for completed flows are pruned lazily (flow ids are unique).
    map_read_flows: BTreeMap<FlowId, (usize, usize)>,
    /// In-flight shuffle fetch batches: flow → `(reducer, claimed maps)`.
    fetch_flows: BTreeMap<FlowId, (usize, Vec<usize>)>,
    /// Worker currently hosting each reduce task, if any.
    reduce_site: Vec<Option<usize>>,
    reduce_done: Vec<bool>,

    report: JobReport,
    finished: bool,
    tracer: Option<Tracer>,
}

struct CopyState {
    host: HostId,
    task_start: SimTime,
    copy_start: SimTime,
    claimed: Vec<bool>,
    completed: usize,
    in_flight: usize,
    bytes_fetched: u64,
}

impl HasNet for HadoopSim {
    fn net(&mut self) -> &mut Net<HadoopSim> {
        &mut self.net
    }
}

impl HadoopSim {
    fn new(cfg: HadoopConfig, spec: JobSpec, plan: FaultPlan) -> Self {
        cfg.validate().expect("invalid hadoop config");
        spec.validate().expect("invalid job spec");
        let workers = cfg.n_workers();
        plan.validate(workers + 1).expect("invalid fault plan");
        // Populate HDFS: the input dataset written round-robin from every
        // worker datanode, with the configured replication factor.
        let mut hdfs = NameNode::new(
            (1..=workers).map(HostId).collect(),
            cfg.replication,
            0x4DF5 ^ spec.input_bytes,
        );
        let blocks = hdfs.load_dataset(spec.input_bytes, cfg.block_bytes);
        let n_maps = blocks.len();
        let map_input: Vec<u64> = blocks.iter().map(|&b| hdfs.block(b).bytes).collect();
        // Shuffle strategy (deployment knob wins over the job's spec).
        // Co-location for in-node combining is a tasktracker's `map_slots`
        // co-running map tasks, whose spills merge before being served.
        let shuffle = SimShuffle::resolve(cfg.shuffle, spec.shuffle);
        let data_factor = shuffle.data_factor(cfg.map_slots, spec.combine_ratio);
        let code_factor = shuffle.code_factor();
        let per_reduce_partition: Vec<u64> = map_input
            .iter()
            .map(|&b| ((spec.shuffle_bytes(b) as f64) * data_factor) as u64 / cfg.n_reduces as u64)
            .collect();
        let n_reduces = cfg.n_reduces;
        let cluster = match &cfg.rack {
            Some(l) => Cluster::with_racks(cfg.cluster.clone(), l.clone()),
            None => Cluster::new(cfg.cluster.clone()),
        };
        HadoopSim {
            net: Net::new(cluster),
            rng: SplitMix64::new(0x1c99_2011 ^ spec.input_bytes),
            spec,
            n_maps,
            hdfs,
            blocks,
            map_input,
            per_reduce_partition,
            shuffle,
            data_factor,
            code_factor,
            setup_done: false,
            pending_maps: (0..n_maps).rev().collect(),
            pending_reduces: (0..n_reduces).rev().collect(),
            free_map_slots: vec![cfg.map_slots; workers],
            free_reduce_slots: vec![cfg.reduce_slots; workers],
            maps_done: 0,
            reduces_done: 0,
            map_out_ready: vec![false; n_maps],
            map_out_host: vec![HostId(0); n_maps],
            copiers: (0..n_reduces).map(|_| None).collect(),
            waiting_reducers: Vec::new(),
            map_started: vec![None; n_maps],
            map_speculated: vec![false; n_maps],
            map_attempts: vec![0; n_maps],
            completed_map_durations: OnlineStats::new(),
            map_progress: vec![0.0; n_maps],
            faulty: !plan.is_empty(),
            plan,
            worker_alive: vec![true; workers],
            running_map_attempts: Vec::new(),
            map_read_flows: BTreeMap::new(),
            fetch_flows: BTreeMap::new(),
            reduce_site: vec![None; n_reduces],
            reduce_done: vec![false; n_reduces],
            report: JobReport {
                makespan: SimTime::ZERO,
                maps: Vec::with_capacity(n_maps),
                reduces: (0..n_reduces)
                    .map(|_| ReduceSpan {
                        start: SimTime::ZERO,
                        end: SimTime::ZERO,
                        copy: SimTime::ZERO,
                        sort: SimTime::ZERO,
                        reduce: SimTime::ZERO,
                    })
                    .collect(),
                ..JobReport::default()
            },
            cfg,
            finished: false,
            tracer: None,
        }
    }

    /// Jobtracker-side per-map-task progress (0.0 queued, 0.5 input read,
    /// 1.0 output committed) — the signal speculation heuristics key off,
    /// reset to 0.0 when a crash forces re-execution.
    pub fn map_progress(&self) -> &[f64] {
        &self.map_progress
    }

    /// Install a trace sink on the job and its network, and name the trace
    /// lanes (pid 0 = jobtracker, pid 1.. = workers).
    fn set_tracer(&mut self, tracer: Tracer) {
        tracer.set_process_name(0, "jobtracker");
        for w in 0..self.cfg.n_workers() {
            tracer.set_process_name(1 + w as u32, format!("worker-{}", 1 + w));
        }
        self.net.set_tracer(tracer.clone());
        // Same cadence as the MPI-D sim so profiles are comparable.
        self.net.set_util_sampling(SimTime::from_millis(100));
        self.tracer = Some(tracer);
    }

    fn start(sim: &mut Sim<HadoopSim>) {
        let setup = sim.state.cfg.job_setup;
        sim.schedule(setup, |s: &mut HadoopSim, sc| {
            s.setup_done = true;
            if let Some(t) = &s.tracer {
                t.complete(
                    0,
                    0,
                    obs::names::SPAN_JOB_SETUP,
                    obs::names::CAT_HADOOP_JOB,
                    0,
                    sc.now().as_nanos(),
                    vec![],
                );
            }
        });
        // Stagger tracker heartbeats across the interval.
        let workers = sim.state.cfg.n_workers();
        let hb = sim.state.cfg.heartbeat;
        for w in 0..workers {
            let offset = SimTime::from_nanos(hb.as_nanos() * w as u64 / workers as u64);
            sim.schedule(setup + offset, move |s: &mut HadoopSim, sc| {
                Self::heartbeat(s, sc, w);
            });
        }
        Self::schedule_faults(sim);
    }

    /// Schedule every event of the fault plan against the simulation clock.
    /// (Straggler windows are not events — `map_compute`/`reduce_compute`
    /// query them via [`FaultPlan::cpu_factor`].)
    fn schedule_faults(sim: &mut Sim<HadoopSim>) {
        for ev in sim.state.plan.events().to_vec() {
            let host = HostId(ev.host);
            match ev.kind {
                FaultKind::NodeCrash => {
                    sim.schedule(ev.at, move |s: &mut HadoopSim, sc| {
                        Self::crash_worker(s, sc, host.0 - 1);
                    });
                }
                FaultKind::DiskSlowdown { factor } => {
                    sim.schedule(ev.at, move |s: &mut HadoopSim, sc| {
                        if !s.finished && s.net.host_alive(host) {
                            Net::set_disk_factor(s, sc, host, factor);
                        }
                    });
                }
                FaultKind::NicDegrade { factor } => {
                    sim.schedule(ev.at, move |s: &mut HadoopSim, sc| {
                        if !s.finished && s.net.host_alive(host) {
                            Net::set_nic_factor(s, sc, host, factor);
                        }
                    });
                }
                FaultKind::LinkPartition { peer, heal_at } => {
                    let peer = HostId(peer);
                    sim.schedule(ev.at, move |s: &mut HadoopSim, sc| {
                        if !s.finished && s.net.host_alive(host) && s.net.host_alive(peer) {
                            Net::cut_link(s, sc, host, peer);
                        }
                    });
                    sim.schedule(heal_at, move |s: &mut HadoopSim, sc| {
                        Net::heal_link(s, sc, host, peer);
                    });
                }
                FaultKind::StragglerCpu { .. } => {}
            }
        }
    }

    /// A worker dies: kill its flows and tasks, invalidate map outputs it
    /// served, and put the lost work back on the jobtracker's queues —
    /// 0.20's TaskTracker-lost handling.
    fn crash_worker(s: &mut HadoopSim, sc: &mut Scheduler<HadoopSim>, w: usize) {
        if s.finished || !s.worker_alive[w] {
            return;
        }
        s.worker_alive[w] = false;
        s.report.crashed_workers += 1;
        let host = HostId(1 + w);
        let killed = Net::fail_host(s, sc, host);
        // Reduce tasks sited on the dead worker restart from scratch on a
        // surviving one (all partially fetched data lived on its disk).
        for r in 0..s.cfg.n_reduces {
            if s.reduce_site[r] == Some(w) && !s.reduce_done[r] {
                s.copiers[r] = None;
                s.waiting_reducers.retain(|&x| x != r);
                s.pending_reduces.push(r);
                s.reduce_site[r] = None;
                s.report.restarted_reduces += 1;
            }
        }
        // Reconcile killed flows that belonged to tasks on *surviving*
        // hosts: shuffle fetches served by the dead host, and remote input
        // reads streaming from its disk.
        let mut retry_fetch: Vec<usize> = Vec::new();
        for id in &killed {
            if let Some((r, maps)) = s.fetch_flows.remove(id) {
                if let Some(cs) = s.copiers[r].as_mut() {
                    cs.in_flight -= 1;
                    for m in maps {
                        cs.claimed[m] = false;
                    }
                    retry_fetch.push(r);
                }
            }
            if let Some((m, wk)) = s.map_read_flows.remove(id) {
                if s.worker_alive[wk] {
                    s.free_map_slots[wk] += 1;
                    if let Some(p) = s
                        .running_map_attempts
                        .iter()
                        .position(|&(mm, ww)| mm == m && ww == wk)
                    {
                        s.running_map_attempts.remove(p);
                    }
                    Self::requeue_map_if_lost(s, m);
                }
            }
        }
        // Attempts that were running on the dead worker are gone.
        let lost: Vec<usize> = s
            .running_map_attempts
            .iter()
            .filter(|&&(_, ww)| ww == w)
            .map(|&(m, _)| m)
            .collect();
        s.running_map_attempts.retain(|&(_, ww)| ww != w);
        for m in lost {
            Self::requeue_map_if_lost(s, m);
        }
        // Committed map outputs stored on the dead worker are lost; unless
        // another attempt is already re-producing them, those maps re-run.
        for m in 0..s.n_maps {
            if s.map_out_ready[m] && s.map_out_host[m] == host {
                s.map_out_ready[m] = false;
                s.maps_done -= 1;
                s.report.maps_reexecuted += 1;
                Self::requeue_map_if_lost(s, m);
            }
        }
        if let Some(t) = &s.tracer {
            t.instant_args(
                1 + w as u32,
                0,
                obs::names::INST_WORKER_CRASH,
                obs::names::CAT_FAULTS_INJECT,
                sc.now().as_nanos(),
                vec![
                    ("flows_killed", ArgValue::U64(killed.len() as u64)),
                    ("maps_reexecuted", ArgValue::U64(s.report.maps_reexecuted)),
                ],
            );
            t.metrics().inc(obs::names::M_HADOOP_CRASHED_WORKERS, 1);
        }
        // Reducers whose fetch died mid-flight retry against the surviving
        // copies (or park until the re-executed map republishes).
        retry_fetch.sort_unstable();
        retry_fetch.dedup();
        for r in retry_fetch {
            if s.copiers[r].is_some() {
                Self::try_fetch(s, sc, r);
            }
        }
    }

    /// Re-queue map `m` for execution if no output is committed, no attempt
    /// is still running, and it is not already pending.
    fn requeue_map_if_lost(s: &mut HadoopSim, m: usize) {
        let running = s.running_map_attempts.iter().any(|&(mm, _)| mm == m);
        if !s.map_out_ready[m] && !running && !s.pending_maps.contains(&m) {
            s.pending_maps.push(m);
            s.map_started[m] = None;
            s.map_speculated[m] = false;
            s.map_progress[m] = 0.0;
        }
    }

    // ---------------- scheduling ----------------

    fn heartbeat(s: &mut HadoopSim, sc: &mut Scheduler<HadoopSim>, worker: usize) {
        if s.finished || !s.worker_alive[worker] {
            return;
        }
        if s.setup_done {
            Self::assign_tasks(s, sc, worker);
        }
        let hb = s.cfg.heartbeat;
        sc.schedule_in(hb, move |s: &mut HadoopSim, sc| {
            Self::heartbeat(s, sc, worker);
        });
    }

    fn assign_tasks(s: &mut HadoopSim, sc: &mut Scheduler<HadoopSim>, worker: usize) {
        let host = HostId(1 + worker);
        // One map assignment per heartbeat (0.20 scheduler), locality first
        // (any of the block's replicas on this host counts).
        if s.free_map_slots[worker] > 0 {
            if !s.pending_maps.is_empty() {
                let pick = s
                    .pending_maps
                    .iter()
                    .rposition(|&m| s.hdfs.is_local(s.blocks[m], host))
                    .unwrap_or(s.pending_maps.len() - 1);
                let m = s.pending_maps.remove(pick);
                s.free_map_slots[worker] -= 1;
                s.map_started[m].get_or_insert(sc.now());
                s.map_attempts[m] += 1;
                Self::start_map(s, sc, m, worker);
            } else if s.cfg.speculative {
                // No fresh work: consider a speculative duplicate for the
                // worst straggler (0.20's heuristic, simplified — elapsed
                // must exceed 1.5x the average completed map duration).
                let avg = s.completed_map_durations.mean();
                if s.completed_map_durations.count() >= 3 {
                    let now = sc.now().as_secs_f64();
                    let candidate = (0..s.n_maps)
                        .filter(|&m| {
                            !s.map_out_ready[m]
                                && !s.map_speculated[m]
                                && s.map_started[m].is_some()
                        })
                        .max_by(|&a, &b| {
                            let ea = now - s.map_started[a].expect("started").as_secs_f64();
                            let eb = now - s.map_started[b].expect("started").as_secs_f64();
                            ea.partial_cmp(&eb).expect("finite")
                        });
                    if let Some(m) = candidate {
                        let elapsed = now - s.map_started[m].expect("started").as_secs_f64();
                        if elapsed > 1.5 * avg {
                            s.map_speculated[m] = true;
                            s.report.speculative_launched += 1;
                            s.free_map_slots[worker] -= 1;
                            if let Some(t) = &s.tracer {
                                t.instant(
                                    1 + worker as u32,
                                    m as u32,
                                    obs::names::INST_SPECULATIVE_LAUNCH,
                                    obs::names::CAT_HADOOP_SCHED,
                                    sc.now().as_nanos(),
                                );
                                t.metrics()
                                    .inc(obs::names::M_HADOOP_SPECULATIVE_LAUNCHED, 1);
                            }
                            Self::start_map(s, sc, m, worker);
                        }
                    }
                }
            }
        }
        // One reduce assignment per heartbeat, gated on slowstart.
        let slowstart_met = s.maps_done as f64 >= s.cfg.slowstart * s.n_maps as f64;
        if slowstart_met && s.free_reduce_slots[worker] > 0 {
            if let Some(r) = s.pending_reduces.pop() {
                s.free_reduce_slots[worker] -= 1;
                Self::start_reduce(s, sc, r, worker);
            }
        }
    }

    // ---------------- map tasks ----------------

    fn start_map(s: &mut HadoopSim, sc: &mut Scheduler<HadoopSim>, m: usize, worker: usize) {
        let host = HostId(1 + worker);
        let start = sc.now();
        let (replica, local) = s.hdfs.select_replica(s.blocks[m], host);
        s.running_map_attempts.push((m, worker));
        let jvm = SimTime::from_secs_f64(s.rng.jittered(s.cfg.jvm_start.as_secs_f64(), 0.2));
        sc.schedule_in(jvm, move |s: &mut HadoopSim, sc| {
            // The attempt's worker may have crashed while the JVM launched.
            if !s.worker_alive[worker] {
                return;
            }
            // A remote replica host may have crashed too: fall back to a
            // surviving replica (or requeue via the dead-host read path).
            let (replica, local) = if !local && !s.net.host_alive(replica) {
                s.hdfs
                    .select_replica_alive(s.blocks[m], host, |h| s.net.host_alive(h))
            } else {
                (replica, local)
            };
            // Read the input block (local disk or streamed from the replica
            // host).
            let bytes = s.map_input[m];
            let route = if local {
                Route::DiskRead(host)
            } else {
                Route::RemoteRead {
                    from: replica,
                    to: host,
                }
            };
            // Charge one initial seek via the seek-equivalent convention.
            let seek_bytes =
                (s.cfg.fetch_seek.as_secs_f64() * s.cfg.cluster.disk_read_bytes_per_sec) as u64;
            let id = Net::start_flow(s, sc, route, bytes + seek_bytes, 1.0, move |s, sc| {
                Self::map_compute(s, sc, m, worker, start, local);
            });
            if s.faulty && !local {
                s.map_read_flows.insert(id, (m, worker));
            }
        });
    }

    fn map_compute(
        s: &mut HadoopSim,
        sc: &mut Scheduler<HadoopSim>,
        m: usize,
        worker: usize,
        start: SimTime,
        local: bool,
    ) {
        let bytes = s.map_input[m];
        // Real-world map durations vary substantially (GC pauses, record
        // skew, page-cache state) — and that variance is load-bearing for
        // Table I's small-input cells: reducers launched at 5% map
        // completion spend their copy stage waiting for straggler maps.
        // Straggler injection: a small fraction of attempts run several
        // times slower (GC storm, failing disk) — what speculative
        // execution exists to mask.
        let straggle = if s.rng.next_f64() < s.cfg.straggler_prob {
            s.cfg.straggler_factor
        } else {
            1.0
        };
        s.map_progress[m] = 0.5;
        // Injected straggler windows multiply on top of the sampled
        // variance (applied after the RNG draws, so an empty plan leaves
        // the random sequence untouched).
        let injected = s.plan.cpu_factor(1 + worker, sc.now());
        // Coded shuffle replicates the map work `r`×; in-node combining
        // pays a second combine pass over the slot group's merged spills.
        // Both terms are 1.0/absent at baseline.
        let strategy_cpu = s.spec.map_cpu_secs(bytes) * (s.shuffle.map_work_factor() - 1.0)
            + if s.shuffle == SimShuffle::InNodeCombine {
                s.spec.shuffle_bytes(bytes) as f64 * s.spec.combine_cpu_ns_per_byte * 1e-9
            } else {
                0.0
            };
        let cpu = SimTime::from_secs_f64(
            (s.rng.jittered(s.spec.map_cpu_secs(bytes), 0.35) + strategy_cpu) * straggle * injected,
        );
        sc.schedule_in(cpu, move |s: &mut HadoopSim, sc| {
            if !s.worker_alive[worker] {
                return;
            }
            // Spill the (combined) map output; oversized raw output pays an
            // extra merge pass (read + write ≈ 3× the final volume).
            let host = HostId(1 + worker);
            let raw = s.spec.map_output_bytes(s.map_input[m]);
            let shuffled = ((s.spec.shuffle_bytes(s.map_input[m]) as f64) * s.data_factor) as u64;
            let disk_bytes = if raw > s.cfg.io_sort_bytes {
                shuffled * 3
            } else {
                shuffled
            };
            Net::disk_write(s, sc, host, disk_bytes, move |s, sc| {
                Self::map_done(s, sc, m, worker, start, local);
            });
        });
    }

    fn map_done(
        s: &mut HadoopSim,
        sc: &mut Scheduler<HadoopSim>,
        m: usize,
        worker: usize,
        start: SimTime,
        local: bool,
    ) {
        if s.finished || !s.worker_alive[worker] {
            return;
        }
        // This attempt is no longer running, whatever its outcome below.
        if let Some(p) = s
            .running_map_attempts
            .iter()
            .position(|&(mm, ww)| mm == m && ww == worker)
        {
            s.running_map_attempts.remove(p);
        }
        if s.map_out_ready[m] {
            // A speculative duplicate lost the race: its work is wasted;
            // just free the slot.
            s.report.speculative_wasted += 1;
            s.free_map_slots[worker] += 1;
            if let Some(t) = &s.tracer {
                t.instant(
                    1 + worker as u32,
                    m as u32,
                    obs::names::INST_SPECULATIVE_WASTED,
                    obs::names::CAT_HADOOP_SCHED,
                    sc.now().as_nanos(),
                );
            }
            return;
        }
        // Attempt-failure injection (task JVM crash, disk error): the
        // attempt's work is lost; the JobTracker reschedules the task, up to
        // the attempt limit — then the whole job is failed, 0.20-style.
        if s.rng.next_f64() < s.cfg.task_failure_prob {
            s.report.failed_map_attempts += 1;
            s.free_map_slots[worker] += 1;
            if let Some(t) = &s.tracer {
                t.instant(
                    1 + worker as u32,
                    m as u32,
                    obs::names::INST_MAP_ATTEMPT_FAILED,
                    obs::names::CAT_HADOOP_SCHED,
                    sc.now().as_nanos(),
                );
                t.metrics().inc(obs::names::M_HADOOP_FAILED_MAP_ATTEMPTS, 1);
            }
            if s.map_attempts[m] >= s.cfg.max_task_attempts {
                s.report.job_failed = true;
                s.report.makespan = sc.now();
                s.finished = true;
                return;
            }
            s.pending_maps.push(m);
            return;
        }
        s.report.maps.push(MapSpan {
            start,
            end: sc.now(),
            local,
        });
        s.completed_map_durations
            .add((sc.now() - start).as_secs_f64());
        s.map_out_ready[m] = true;
        s.map_out_host[m] = HostId(1 + worker);
        s.map_progress[m] = 1.0;
        s.maps_done += 1;
        if let Some(t) = &s.tracer {
            t.complete(
                1 + worker as u32,
                m as u32,
                obs::names::SPAN_MAP,
                obs::names::CAT_HADOOP_PHASE,
                start.as_nanos(),
                sc.now().as_nanos(),
                vec![
                    ("local", ArgValue::Bool(local)),
                    ("input_bytes", ArgValue::U64(s.map_input[m])),
                ],
            );
            t.counter(
                0,
                obs::names::M_HADOOP_MAPS_DONE,
                obs::names::CAT_HADOOP,
                sc.now().as_nanos(),
                s.maps_done as f64,
            );
            t.metrics().inc(obs::names::M_HADOOP_MAPS_DONE, 1);
            t.metrics().observe(
                obs::names::M_HADOOP_MAP_DURATION_MS,
                (sc.now() - start).as_nanos() / 1_000_000,
            );
        }
        s.free_map_slots[worker] += 1;
        // New map output may unblock reducers idling in their copy phase.
        let waiting = std::mem::take(&mut s.waiting_reducers);
        for r in waiting {
            Self::try_fetch(s, sc, r);
        }
    }

    // ---------------- reduce tasks ----------------

    fn start_reduce(s: &mut HadoopSim, sc: &mut Scheduler<HadoopSim>, r: usize, worker: usize) {
        let host = HostId(1 + worker);
        let task_start = sc.now();
        s.reduce_site[r] = Some(worker);
        let jvm = SimTime::from_secs_f64(s.rng.jittered(s.cfg.jvm_start.as_secs_f64(), 0.2));
        sc.schedule_in(jvm, move |s: &mut HadoopSim, sc| {
            if !s.worker_alive[worker] {
                return;
            }
            s.copiers[r] = Some(CopyState {
                host,
                task_start,
                copy_start: sc.now(),
                claimed: vec![false; s.n_maps],
                completed: 0,
                in_flight: 0,
                bytes_fetched: 0,
            });
            Self::try_fetch(s, sc, r);
        });
    }

    /// Launch shuffle fetch batches for reducer `r` up to the parallel-copy
    /// limit; park the reducer if no unclaimed output is available yet.
    fn try_fetch(s: &mut HadoopSim, sc: &mut Scheduler<HadoopSim>, r: usize) {
        loop {
            let Some(cs) = s.copiers[r].as_ref() else {
                return;
            };
            if cs.in_flight >= s.cfg.parallel_copies {
                return;
            }
            // Find a host with available unclaimed outputs and claim all of
            // them as one batch.
            let mut batch: Vec<usize> = Vec::new();
            let mut from: Option<HostId> = None;
            for m in 0..s.n_maps {
                if s.map_out_ready[m] && !cs.claimed[m] {
                    match from {
                        None => {
                            from = Some(s.map_out_host[m]);
                            batch.push(m);
                        }
                        Some(h) if s.map_out_host[m] == h => batch.push(m),
                        _ => {}
                    }
                }
            }
            let Some(from) = from else {
                // Nothing available: park unless copy already complete.
                let cs = s.copiers[r].as_ref().expect("copier");
                if cs.completed < s.n_maps && cs.in_flight == 0 {
                    s.waiting_reducers.push(r);
                }
                return;
            };
            let cs = s.copiers[r].as_mut().expect("copier");
            for &m in &batch {
                cs.claimed[m] = true;
            }
            cs.in_flight += 1;
            let to = cs.host;
            let payload: u64 = batch.iter().map(|&m| s.per_reduce_partition[m]).sum();
            // Per-fetch seek + servlet overhead, charged as seek-equivalent
            // bytes on the serving disk.
            let per_fetch = s.cfg.fetch_seek.as_secs_f64() + s.cfg.http_setup.as_secs_f64();
            let overhead_bytes =
                (per_fetch * s.cfg.cluster.disk_read_bytes_per_sec) as u64 * batch.len() as u64;
            let route = if from == to {
                Route::DiskRead(from)
            } else {
                Route::RemoteRead { from, to }
            };
            let n_batch = batch.len();
            // Coded multicast deflates what crosses the disk/wire; the
            // reducer still accounts the full decoded payload below.
            let wire = ((payload as f64) * s.code_factor) as u64;
            s.report.shuffle_wire_bytes += wire;
            let id = Net::start_flow(s, sc, route, wire + overhead_bytes, 1.0, move |s, sc| {
                let cs = s.copiers[r].as_mut().expect("copier");
                cs.in_flight -= 1;
                cs.completed += n_batch;
                cs.bytes_fetched += payload;
                if cs.completed >= s.n_maps {
                    if cs.in_flight == 0 {
                        Self::copy_done(s, sc, r);
                    }
                } else {
                    Self::try_fetch(s, sc, r);
                }
            });
            if s.faulty {
                s.fetch_flows.insert(id, (r, batch));
            }
        }
    }

    fn copy_done(s: &mut HadoopSim, sc: &mut Scheduler<HadoopSim>, r: usize) {
        let cs = s.copiers[r].take().expect("copier");
        let copy = sc.now() - cs.copy_start;
        let shuffled = cs.bytes_fetched;
        let span_base = (cs.task_start, cs.host);
        if let Some(t) = &s.tracer {
            t.complete(
                cs.host.0 as u32,
                REDUCE_TID_BASE + r as u32,
                obs::names::SPAN_COPY,
                obs::names::CAT_HADOOP_PHASE,
                cs.copy_start.as_nanos(),
                sc.now().as_nanos(),
                vec![("shuffled_bytes", ArgValue::U64(shuffled))],
            );
            t.metrics()
                .inc(obs::names::M_HADOOP_SHUFFLE_BYTES, shuffled);
        }
        // Sort/merge stage: in-memory if it fits the merge buffer (the
        // paper's ~0.01 s sorts), otherwise on-disk merge passes.
        if shuffled <= s.cfg.merge_buffer_bytes {
            let sort = SimTime::from_millis(10);
            let worker = cs.host.0 - 1;
            sc.schedule_in(sort, move |s: &mut HadoopSim, sc| {
                if !s.worker_alive[worker] {
                    return;
                }
                Self::reduce_compute(s, sc, r, span_base, copy, sort, shuffled);
            });
        } else {
            let sort_start = sc.now();
            // One merge pass: write then read the whole volume.
            let host = cs.host;
            Net::disk_write(s, sc, host, shuffled, move |s, sc| {
                Net::start_flow(s, sc, Route::DiskRead(host), shuffled, 1.0, move |s, sc| {
                    let sort = sc.now() - sort_start;
                    Self::reduce_compute(s, sc, r, span_base, copy, sort, shuffled);
                });
            });
        }
    }

    fn reduce_compute(
        s: &mut HadoopSim,
        sc: &mut Scheduler<HadoopSim>,
        r: usize,
        span_base: (SimTime, HostId),
        copy: SimTime,
        sort: SimTime,
        shuffled: u64,
    ) {
        let reduce_start = sc.now();
        let (task_start, host) = span_base;
        let injected = s.plan.cpu_factor(host.0, sc.now());
        let cpu = SimTime::from_secs_f64(
            s.rng.jittered(s.spec.reduce_cpu_secs(shuffled), 0.1) * injected,
        );
        if let Some(t) = &s.tracer {
            // The sort/merge stage ends exactly where the reduce stage starts.
            t.complete(
                host.0 as u32,
                REDUCE_TID_BASE + r as u32,
                obs::names::SPAN_SORT,
                obs::names::CAT_HADOOP_PHASE,
                (reduce_start - sort).as_nanos(),
                reduce_start.as_nanos(),
                vec![],
            );
        }
        sc.schedule_in(cpu, move |s: &mut HadoopSim, sc| {
            if !s.worker_alive[host.0 - 1] {
                return;
            }
            let out = s.spec.output_bytes(shuffled);
            // Output commits through the page cache: write-back absorbs the
            // burst, so the flow gets elevated weight against the steady
            // seek-dominated shuffle load on the spindle.
            let ratio =
                s.cfg.cluster.disk_read_bytes_per_sec / s.cfg.cluster.disk_write_bytes_per_sec;
            let scaled = ((out as f64) * ratio).ceil() as u64;
            Net::start_flow(s, sc, Route::DiskWrite(host), scaled, 4.0, move |s, sc| {
                let reduce = sc.now() - reduce_start;
                s.report.reduces[r] = ReduceSpan {
                    start: task_start,
                    end: sc.now(),
                    copy,
                    sort,
                    reduce,
                };
                s.reduces_done += 1;
                s.reduce_done[r] = true;
                s.reduce_site[r] = None;
                s.free_reduce_slots[host.0 - 1] += 1;
                if let Some(t) = &s.tracer {
                    t.complete(
                        host.0 as u32,
                        REDUCE_TID_BASE + r as u32,
                        obs::names::SPAN_REDUCE,
                        obs::names::CAT_HADOOP_PHASE,
                        reduce_start.as_nanos(),
                        sc.now().as_nanos(),
                        vec![("shuffled_bytes", ArgValue::U64(shuffled))],
                    );
                    t.counter(
                        0,
                        obs::names::M_HADOOP_REDUCES_DONE,
                        obs::names::CAT_HADOOP,
                        sc.now().as_nanos(),
                        s.reduces_done as f64,
                    );
                    t.metrics().inc(obs::names::M_HADOOP_REDUCES_DONE, 1);
                }
                if s.reduces_done == s.cfg.n_reduces {
                    let cleanup = s.cfg.job_cleanup;
                    sc.schedule_in(cleanup, |s: &mut HadoopSim, sc| {
                        s.finished = true;
                        s.report.makespan = sc.now();
                        if let Some(t) = &s.tracer {
                            t.instant(
                                0,
                                0,
                                obs::names::INST_JOB_FINISHED,
                                obs::names::CAT_HADOOP_JOB,
                                sc.now().as_nanos(),
                            );
                        }
                    });
                }
            });
        });
    }
}

/// Execute one simulated Hadoop job, returning the timing report.
pub fn run_job(cfg: HadoopConfig, spec: JobSpec) -> JobReport {
    run_job_inner(cfg, spec, FaultPlan::none(), None)
}

/// Like [`run_job`], but recording map/copy/sort/reduce spans, scheduler
/// instants, and network flow spans into `tracer` (all timestamps are
/// simulated nanoseconds, so the resulting trace is deterministic).
pub fn run_job_traced(cfg: HadoopConfig, spec: JobSpec, tracer: Tracer) -> JobReport {
    run_job_inner(cfg, spec, FaultPlan::none(), Some(tracer))
}

/// Execute one simulated Hadoop job under a fault plan: node crashes kill
/// workers (their tasks and map outputs re-execute elsewhere), degraded
/// disks/NICs rescale flow rates, partitions stall traffic until healed,
/// and straggler windows slow task CPU (masked by speculation). An empty
/// plan is byte-identical to [`run_job`].
pub fn run_job_faulty(cfg: HadoopConfig, spec: JobSpec, plan: FaultPlan) -> JobReport {
    run_job_inner(cfg, spec, plan, None)
}

/// [`run_job_faulty`] with trace recording; every injected fault appears as
/// a `faults.inject` instant on the struck host's lane.
pub fn run_job_faulty_traced(
    cfg: HadoopConfig,
    spec: JobSpec,
    plan: FaultPlan,
    tracer: Tracer,
) -> JobReport {
    run_job_inner(cfg, spec, plan, Some(tracer))
}

fn run_job_inner(
    cfg: HadoopConfig,
    spec: JobSpec,
    plan: FaultPlan,
    tracer: Option<Tracer>,
) -> JobReport {
    let mut sim = Sim::new(HadoopSim::new(cfg, spec, plan));
    if let Some(t) = tracer {
        sim.state.plan.emit_schedule(&t);
        sim.state.set_tracer(t);
    }
    HadoopSim::start(&mut sim);
    sim.run();
    assert!(
        sim.state.finished,
        "simulation ended without completing the job (deadlock in the model?)"
    );
    sim.state.report.clone()
}
