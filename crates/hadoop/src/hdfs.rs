//! HDFS namenode state: block allocation, replica placement, and replica
//! selection — the piece of Hadoop that decides where map inputs live and
//! therefore how local the map phase can be.
//!
//! Placement follows the classic policy (flattened to one rack, as on the
//! paper's single-switch testbed): first replica on the writing datanode,
//! the remaining replicas on distinct other datanodes, chosen at random but
//! load-balanced (least-loaded among a random sample).

use desim::rng::SplitMix64;
use netsim::HostId;

/// Index of a block in the namespace.
pub type BlockId = usize;

/// One block's metadata.
#[derive(Debug, Clone)]
pub struct BlockInfo {
    /// Size in bytes.
    pub bytes: u64,
    /// Hosts holding a replica (first = the writer).
    pub replicas: Vec<HostId>,
}

/// The namenode's block map.
#[derive(Debug)]
pub struct NameNode {
    workers: Vec<HostId>,
    replication: usize,
    blocks: Vec<BlockInfo>,
    per_host_blocks: Vec<u64>, // indexed by HostId.0
    rng: SplitMix64,
}

impl NameNode {
    /// Namespace over `workers` datanodes with the given replication factor
    /// (HDFS default 3, clamped to the cluster size).
    pub fn new(workers: Vec<HostId>, replication: usize, seed: u64) -> Self {
        assert!(!workers.is_empty(), "need at least one datanode");
        let max_host = workers.iter().map(|h| h.0).max().expect("nonempty") + 1;
        NameNode {
            replication: replication.clamp(1, workers.len()),
            workers,
            blocks: Vec::new(),
            per_host_blocks: vec![0; max_host],
            rng: SplitMix64::new(seed ^ 0xDF5),
        }
    }

    /// Allocate a block written from `writer`: replica 1 on the writer,
    /// replicas 2..r on distinct least-loaded random other datanodes.
    pub fn allocate(&mut self, writer: HostId, bytes: u64) -> BlockId {
        assert!(self.workers.contains(&writer), "writer must be a datanode");
        let mut replicas = vec![writer];
        while replicas.len() < self.replication {
            // Sample two candidates, keep the less-loaded (power of two
            // choices — a good stand-in for HDFS's balancing heuristics).
            let pick = |rng: &mut SplitMix64, workers: &[HostId]| {
                workers[rng.next_below(workers.len() as u64) as usize]
            };
            let mut best: Option<HostId> = None;
            for _ in 0..8 {
                let a = pick(&mut self.rng, &self.workers);
                let b = pick(&mut self.rng, &self.workers);
                let c = if self.per_host_blocks[a.0] <= self.per_host_blocks[b.0] {
                    a
                } else {
                    b
                };
                if !replicas.contains(&c) {
                    best = Some(c);
                    break;
                }
            }
            let c = best.unwrap_or_else(|| {
                // Dense cluster fallback: first datanode not yet holding one.
                *self
                    .workers
                    .iter()
                    .find(|h| !replicas.contains(h))
                    .expect("replication <= cluster size")
            });
            replicas.push(c);
        }
        for h in &replicas {
            self.per_host_blocks[h.0] += 1;
        }
        self.blocks.push(BlockInfo { bytes, replicas });
        self.blocks.len() - 1
    }

    /// Populate the namespace with a dataset of `total_bytes`, written
    /// round-robin from every datanode (how a distributed generator like
    /// GridMix's writes its input).
    pub fn load_dataset(&mut self, total_bytes: u64, block_bytes: u64) -> Vec<BlockId> {
        assert!(block_bytes > 0);
        let n_blocks = total_bytes.div_ceil(block_bytes).max(1) as usize;
        let tail = total_bytes % block_bytes;
        (0..n_blocks)
            .map(|i| {
                let writer = self.workers[i % self.workers.len()];
                let bytes = if i == n_blocks - 1 && tail != 0 {
                    tail
                } else {
                    block_bytes
                };
                self.allocate(writer, bytes)
            })
            .collect()
    }

    /// Block metadata.
    pub fn block(&self, b: BlockId) -> &BlockInfo {
        &self.blocks[b]
    }

    /// Number of blocks in the namespace.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when the namespace is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Does `host` hold a replica of `b`?
    pub fn is_local(&self, b: BlockId, host: HostId) -> bool {
        self.blocks[b].replicas.contains(&host)
    }

    /// Pick the replica a reader on `host` should use: local if possible,
    /// otherwise the least-loaded remote replica holder.
    pub fn select_replica(&self, b: BlockId, host: HostId) -> (HostId, bool) {
        let info = &self.blocks[b];
        if info.replicas.contains(&host) {
            return (host, true);
        }
        let remote = *info
            .replicas
            .iter()
            .min_by_key(|h| self.per_host_blocks[h.0])
            .expect("blocks have replicas");
        (remote, false)
    }

    /// Like [`select_replica`](Self::select_replica), but restricted to
    /// replicas on hosts for which `alive` holds — the selection a reader
    /// falls back to after a datanode crash.
    ///
    /// # Panics
    /// Panics if every replica of `b` is on a dead host (the block is lost;
    /// with the HDFS default replication of 3, a single crash cannot cause
    /// this).
    pub fn select_replica_alive(
        &self,
        b: BlockId,
        host: HostId,
        alive: impl Fn(HostId) -> bool,
    ) -> (HostId, bool) {
        let info = &self.blocks[b];
        if info.replicas.contains(&host) && alive(host) {
            return (host, true);
        }
        let remote = *info
            .replicas
            .iter()
            .filter(|&&h| alive(h))
            .min_by_key(|h| self.per_host_blocks[h.0])
            .unwrap_or_else(|| panic!("block {b} lost: every replica is on a crashed host"));
        (remote, false)
    }

    /// Blocks-per-datanode imbalance: max/min replica count across hosts
    /// (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let counts: Vec<u64> = self
            .workers
            .iter()
            .map(|h| self.per_host_blocks[h.0])
            .collect();
        let max = *counts.iter().max().expect("nonempty") as f64;
        let min = *counts.iter().min().expect("nonempty") as f64;
        if min == 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workers(n: usize) -> Vec<HostId> {
        (1..=n).map(HostId).collect()
    }

    #[test]
    fn allocation_places_first_replica_on_writer() {
        let mut nn = NameNode::new(workers(7), 3, 1);
        let b = nn.allocate(HostId(3), 64 << 20);
        let info = nn.block(b);
        assert_eq!(info.replicas[0], HostId(3));
        assert_eq!(info.replicas.len(), 3);
        // Replicas are distinct hosts.
        let mut rs = info.replicas.clone();
        rs.sort();
        rs.dedup();
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn replication_clamped_to_cluster_size() {
        let mut nn = NameNode::new(workers(2), 3, 1);
        let b = nn.allocate(HostId(1), 1);
        assert_eq!(nn.block(b).replicas.len(), 2);
    }

    #[test]
    fn dataset_load_is_balanced() {
        let mut nn = NameNode::new(workers(7), 3, 42);
        let blocks = nn.load_dataset(150 << 30, 64 << 20);
        assert_eq!(blocks.len(), 2400);
        assert!(
            nn.imbalance() < 1.25,
            "placement should be balanced: {}",
            nn.imbalance()
        );
    }

    #[test]
    fn tail_block_has_remainder_size() {
        let mut nn = NameNode::new(workers(3), 2, 1);
        let blocks = nn.load_dataset(100 + 64, 64);
        assert_eq!(blocks.len(), 3);
        assert_eq!(nn.block(blocks[2]).bytes, 36);
    }

    #[test]
    fn replica_selection_prefers_local() {
        let mut nn = NameNode::new(workers(5), 3, 7);
        let b = nn.allocate(HostId(2), 1);
        let (host, local) = nn.select_replica(b, HostId(2));
        assert_eq!(host, HostId(2));
        assert!(local);
        // From a non-replica host we get some replica, marked remote.
        let outsider = *workers(5)
            .iter()
            .find(|h| !nn.block(b).replicas.contains(h))
            .expect("5 hosts, 3 replicas");
        let (host, local) = nn.select_replica(b, outsider);
        assert!(nn.block(b).replicas.contains(&host));
        assert!(!local);
    }

    #[test]
    fn with_replication_3_most_blocks_are_locally_readable() {
        // On a 7-node cluster with r=3, a random reader host holds a
        // replica of ~3/7 of all blocks.
        let mut nn = NameNode::new(workers(7), 3, 99);
        let blocks = nn.load_dataset(10 << 30, 64 << 20);
        let local = blocks
            .iter()
            .filter(|&&b| nn.is_local(b, HostId(4)))
            .count();
        let frac = local as f64 / blocks.len() as f64;
        assert!((0.3..0.6).contains(&frac), "local fraction {frac}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = NameNode::new(workers(7), 3, 5);
        let mut b = NameNode::new(workers(7), 3, 5);
        let ba = a.load_dataset(1 << 30, 64 << 20);
        let bb = b.load_dataset(1 << 30, 64 << 20);
        for (&x, &y) in ba.iter().zip(&bb) {
            assert_eq!(a.block(x).replicas, b.block(y).replicas);
        }
    }
}
