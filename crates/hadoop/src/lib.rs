//! # hadoop-sim — a behavioural simulator of Hadoop 0.20.2 MapReduce
//!
//! The paper measures stock Hadoop 0.20.2 on an 8-node Gigabit-Ethernet
//! cluster; this crate reproduces that execution pipeline as a discrete-event
//! simulation over [`netsim`], at the fidelity the paper's experiments need:
//! heartbeat slot scheduling, per-task JVM launch, HDFS block locality,
//! map-side spills through `io.sort.mb`, the HTTP shuffle with per-fetch
//! disk seeks and bounded parallel copies, reduce-side merging, and
//! slot-limited task waves.
//!
//! Entry point: [`run_job`] with a [`HadoopConfig`] (deployment knobs) and a
//! [`netsim::JobSpec`] (workload volumes/costs); result: a [`JobReport`]
//! with per-task phase timings — the raw material of the paper's Figure 1,
//! Table I and the Hadoop side of Figure 6.

#![warn(missing_docs)]

pub mod config;
pub mod hdfs;
pub mod report;
pub mod serveplan;
pub mod sim;

pub use config::HadoopConfig;
pub use hdfs::{BlockId, NameNode};
pub use report::{JobReport, MapSpan, ReduceSpan};
pub use serveplan::serve_plan;
pub use sim::{run_job, run_job_faulty, run_job_faulty_traced, run_job_traced};

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimTime;
    use netsim::{JobSpec, SimShuffle};

    /// A small sort-like workload (identity map, shuffle everything).
    fn sort_spec(gb: f64) -> JobSpec {
        JobSpec {
            name: "sort".into(),
            input_bytes: (gb * (1 << 30) as f64) as u64,
            record_bytes: 100,
            map_cpu_ns_per_byte: 60.0,
            map_output_ratio: 1.0,
            combine_ratio: 1.0,
            combine_cpu_ns_per_byte: 0.0,
            reduce_cpu_ns_per_byte: 40.0,
            output_ratio: 1.0,
            shuffle: SimShuffle::Baseline,
        }
    }

    /// A WordCount-like workload (combiner shrinks output dramatically).
    fn wc_spec(gb: f64) -> JobSpec {
        JobSpec {
            name: "wordcount".into(),
            input_bytes: (gb * (1 << 30) as f64) as u64,
            record_bytes: 80,
            map_cpu_ns_per_byte: 800.0,
            map_output_ratio: 1.6,
            combine_ratio: 0.012,
            combine_cpu_ns_per_byte: 30.0,
            reduce_cpu_ns_per_byte: 100.0,
            output_ratio: 1.0,
            shuffle: SimShuffle::Baseline,
        }
    }

    #[test]
    fn small_sort_job_completes_with_sane_report() {
        let cfg = HadoopConfig::icpp2011(4, 4, 8);
        let report = run_job(cfg, sort_spec(1.0));
        assert_eq!(report.maps.len(), 16); // 1 GB / 64 MB
        assert_eq!(report.reduces.len(), 8);
        assert!(report.makespan > SimTime::from_secs(10));
        assert!(report.makespan < SimTime::from_secs(2000));
        for m in &report.maps {
            assert!(m.end > m.start);
        }
        for r in &report.reduces {
            assert!(r.end > r.start);
            assert!(r.copy > SimTime::ZERO);
            assert!(r.reduce > SimTime::ZERO);
            // Phases fit inside the span.
            assert!(r.copy + r.sort + r.reduce <= r.duration() + SimTime::from_secs(1));
        }
    }

    #[test]
    fn shuffle_strategies_trade_wire_for_map_work() {
        let base = run_job(HadoopConfig::icpp2011(4, 4, 8), wc_spec(1.0));
        assert!(base.shuffle_wire_bytes > 0);

        // In-node combining across the 4 co-running map slots shrinks what
        // the copy phase moves.
        let mut cfg = HadoopConfig::icpp2011(4, 4, 8);
        cfg.shuffle = netsim::SimShuffle::InNodeCombine;
        let innode = run_job(cfg, wc_spec(1.0));
        assert!(
            innode.shuffle_wire_bytes < base.shuffle_wire_bytes,
            "innode {} !< base {}",
            innode.shuffle_wire_bytes,
            base.shuffle_wire_bytes
        );

        // Coded shuffle halves the wire volume at r=2 but replicates map
        // work, so map spans stretch while the copy phase shrinks.
        let mut cfg = HadoopConfig::icpp2011(4, 4, 8);
        cfg.shuffle = netsim::SimShuffle::Coded { r: 2 };
        let coded = run_job(cfg, wc_spec(1.0));
        let ratio = coded.shuffle_wire_bytes as f64 / base.shuffle_wire_bytes as f64;
        assert!((0.45..=0.55).contains(&ratio), "wire ratio {ratio}");
        let mean_map = |r: &JobReport| {
            r.maps
                .iter()
                .map(|m| m.duration().as_secs_f64())
                .sum::<f64>()
                / r.maps.len() as f64
        };
        assert!(mean_map(&coded) > mean_map(&base));

        // The per-job knob reaches the simulator without a config change.
        let mut spec = wc_spec(1.0);
        spec.shuffle = netsim::SimShuffle::Coded { r: 2 };
        let perjob = run_job(HadoopConfig::icpp2011(4, 4, 8), spec);
        assert_eq!(perjob.shuffle_wire_bytes, coded.shuffle_wire_bytes);
    }

    #[test]
    fn rack_topology_slows_the_copy_phase() {
        let flat = run_job(HadoopConfig::icpp2011(4, 4, 8), wc_spec(1.0));
        let mut cfg = HadoopConfig::icpp2011(4, 4, 8);
        let nic = cfg.cluster.nic_bytes_per_sec;
        cfg.rack = Some(netsim::RackLayout::oversubscribed(4, nic, 8.0));
        let racked = run_job(cfg, wc_spec(1.0));
        // Same logical volume crosses the wire; the oversubscribed core
        // only slows it down.
        assert_eq!(racked.shuffle_wire_bytes, flat.shuffle_wire_bytes);
        assert!(racked.makespan >= flat.makespan);
    }

    #[test]
    fn traced_run_covers_every_task_without_perturbing_the_sim() {
        let cfg = HadoopConfig::icpp2011(4, 4, 8);
        let plain = run_job(cfg.clone(), sort_spec(1.0));
        let tracer = obs::Tracer::new();
        let traced = run_job_traced(cfg, sort_spec(1.0), tracer.clone());
        // Tracing is observation only: identical results.
        assert_eq!(plain.makespan, traced.makespan);
        let trace = tracer.take_trace();
        let count = |name: &str| {
            trace
                .events()
                .iter()
                .filter(|e| e.name == name && e.cat == "hadoop.phase")
                .count()
        };
        assert_eq!(count("map"), traced.maps.len());
        assert_eq!(count("copy"), traced.reduces.len());
        assert_eq!(count("sort"), traced.reduces.len());
        assert_eq!(count("reduce"), traced.reduces.len());
        // Every worker lane hosts at least one phase span.
        for pid in 1..=4u32 {
            assert!(
                trace
                    .events()
                    .iter()
                    .any(|e| e.pid == pid && e.cat == "hadoop.phase"),
                "no phase span on worker {pid}"
            );
        }
        // The trace alone reproduces the Table I shape: copy dominates the
        // reduce-side phases.
        let bd = obs::report::PhaseBreakdown::from_trace(&trace, "hadoop.phase");
        assert!(bd.share_of("copy") > bd.share_of("sort"));
        assert!(bd.row("map").is_some());
        // Network flow spans ride along on the same tracer.
        assert!(trace.events().iter().any(|e| e.cat == "net.flow"));
    }

    #[test]
    fn trace_export_is_byte_identical_across_runs() {
        // Same config + spec (the sim RNG is seeded from them) must give a
        // byte-identical Chrome export: timestamps are sim-time, event
        // ordering is a stable sort, and metadata maps are BTreeMaps.
        let export = || {
            let tracer = obs::Tracer::new();
            run_job_traced(
                HadoopConfig::icpp2011(4, 4, 8),
                sort_spec(1.0),
                tracer.clone(),
            );
            tracer.chrome_json()
        };
        let a = export();
        let b = export();
        assert!(a == b, "chrome export must be deterministic");
        obs::chrome::validate(&a).expect("export must be valid JSON");
    }

    #[test]
    fn job_time_grows_with_input() {
        let t1 = run_job(HadoopConfig::icpp2011(4, 4, 8), wc_spec(0.5)).makespan;
        let t2 = run_job(HadoopConfig::icpp2011(4, 4, 8), wc_spec(2.0)).makespan;
        assert!(t2 > t1, "4x input must take longer: {t1} vs {t2}");
    }

    #[test]
    fn fixed_overhead_dominates_tiny_jobs() {
        // A near-empty job still pays setup + scheduling + JVM + cleanup.
        let report = run_job(HadoopConfig::icpp2011(4, 4, 1), wc_spec(0.01));
        assert!(
            report.makespan > SimTime::from_secs(10),
            "tiny job finished too fast: {}",
            report.makespan
        );
    }

    #[test]
    fn locality_is_high_with_round_robin_blocks() {
        let report = run_job(HadoopConfig::icpp2011(4, 4, 8), sort_spec(2.0));
        assert!(
            report.map_locality() > 0.8,
            "locality {}",
            report.map_locality()
        );
    }

    #[test]
    fn many_reducer_waves_have_bounded_copy_after_first_wave() {
        // 2 GB sort with 200 reducers on 28 reduce slots → ≥7 waves. The
        // first wave waits for the map phase (huge copy); later waves only
        // pay fetch costs.
        let mut cfg = HadoopConfig::icpp2011(4, 4, 200);
        cfg.slowstart = 0.05;
        let report = run_job(cfg, sort_spec(2.0));
        let trimmed = report.without_top_copy_outliers(28);
        let first_wave_max = report.reduces.iter().map(|r| r.copy).max().unwrap();
        let trimmed_max = trimmed.reduces.iter().map(|r| r.copy).max().unwrap();
        assert!(
            first_wave_max > trimmed_max * 2,
            "first wave should wait for maps: {first_wave_max} vs {trimmed_max}"
        );
    }

    #[test]
    fn copy_fraction_grows_with_input_size_for_sort() {
        // The Table I trend: bigger inputs → copy stage takes a larger share.
        let small = run_job(HadoopConfig::icpp2011(8, 8, 64), sort_spec(1.0));
        let large = run_job(HadoopConfig::icpp2011(8, 8, 64), sort_spec(8.0));
        assert!(
            large.copy_fraction() > small.copy_fraction() * 0.9,
            "copy fraction should not shrink much with size: {} vs {}",
            small.copy_fraction(),
            large.copy_fraction()
        );
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let a = run_job(HadoopConfig::icpp2011(4, 2, 8), sort_spec(1.0));
        let b = run_job(HadoopConfig::icpp2011(4, 2, 8), sort_spec(1.0));
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.maps.len(), b.maps.len());
        for (x, y) in a.reduces.iter().zip(&b.reduces) {
            assert_eq!(x.copy, y.copy);
            assert_eq!(x.end, y.end);
        }
    }

    #[test]
    fn more_slots_speed_up_map_bound_jobs() {
        // Disable straggler randomness so the comparison isolates slots.
        let mut slow_cfg = HadoopConfig::icpp2011(2, 2, 8);
        slow_cfg.straggler_prob = 0.0;
        let mut fast_cfg = HadoopConfig::icpp2011(8, 8, 8);
        fast_cfg.straggler_prob = 0.0;
        let slow = run_job(slow_cfg, wc_spec(4.0)).makespan;
        let fast = run_job(fast_cfg, wc_spec(4.0)).makespan;
        assert!(
            fast.as_secs_f64() < slow.as_secs_f64() * 0.7,
            "more slots should help: {fast} vs {slow}"
        );
    }

    #[test]
    fn speculation_masks_stragglers() {
        // Heavy stragglers on a single-wave job: speculation should cut the
        // tail substantially.
        let mut on = HadoopConfig::icpp2011(8, 8, 8);
        on.straggler_prob = 0.15;
        on.straggler_factor = 6.0;
        let mut off = on.clone();
        off.speculative = false;
        let with = run_job(on, wc_spec(2.0));
        let without = run_job(off, wc_spec(2.0));
        assert!(
            with.speculative_launched > 0,
            "expected speculative attempts"
        );
        assert!(
            with.makespan.as_secs_f64() < without.makespan.as_secs_f64() * 0.95,
            "speculation should shorten the tail: {} vs {}",
            with.makespan,
            without.makespan
        );
    }

    #[test]
    fn replication_one_reduces_locality() {
        let mut r1 = HadoopConfig::icpp2011(8, 8, 8);
        r1.replication = 1;
        r1.straggler_prob = 0.0;
        let mut r3 = HadoopConfig::icpp2011(8, 8, 8);
        r3.straggler_prob = 0.0;
        let loc1 = run_job(r1, sort_spec(2.0)).map_locality();
        let loc3 = run_job(r3, sort_spec(2.0)).map_locality();
        assert!(
            loc3 >= loc1,
            "more replicas cannot hurt locality: {loc1} vs {loc3}"
        );
        assert!(loc3 > 0.8, "r=3 locality should be high: {loc3}");
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;
    use netsim::{JobSpec, SimShuffle};

    fn spec() -> JobSpec {
        JobSpec {
            name: "wc".into(),
            input_bytes: 1 << 30,
            record_bytes: 80,
            map_cpu_ns_per_byte: 200.0,
            map_output_ratio: 1.6,
            combine_ratio: 0.02,
            combine_cpu_ns_per_byte: 0.0,
            reduce_cpu_ns_per_byte: 50.0,
            output_ratio: 1.0,
            shuffle: SimShuffle::Baseline,
        }
    }

    #[test]
    fn failed_attempts_are_retried_and_job_completes() {
        let mut cfg = HadoopConfig::icpp2011(4, 4, 4);
        cfg.task_failure_prob = 0.25;
        cfg.straggler_prob = 0.0;
        // 0.25^4 per task is ~0.4%, which across 16 tasks still fails one
        // seed in ~16 — give the retry budget headroom so the test pins the
        // retry mechanism, not the seed.
        cfg.max_task_attempts = 8;
        let report = run_job(cfg, spec());
        assert!(
            !report.job_failed,
            "25% failures must be absorbed by retries"
        );
        assert!(
            report.failed_map_attempts > 0,
            "expected some injected failures"
        );
        assert_eq!(report.maps.len(), 16, "every map eventually succeeds");
    }

    #[test]
    fn failures_slow_the_job_down() {
        let mut healthy = HadoopConfig::icpp2011(4, 4, 4);
        healthy.straggler_prob = 0.0;
        let mut flaky = healthy.clone();
        flaky.task_failure_prob = 0.3;
        let t_healthy = run_job(healthy, spec()).makespan;
        let t_flaky = run_job(flaky, spec()).makespan;
        assert!(
            t_flaky > t_healthy,
            "retries must cost time: {t_healthy} vs {t_flaky}"
        );
    }

    #[test]
    fn empty_fault_plan_is_byte_identical_to_plain_run() {
        let cfg = HadoopConfig::icpp2011(4, 4, 4);
        let plain = run_job(cfg.clone(), spec());
        let faulty = run_job_faulty(cfg, spec(), faults::FaultPlan::none());
        assert_eq!(plain.makespan, faulty.makespan);
        assert_eq!(plain.maps.len(), faulty.maps.len());
        for (a, b) in plain.reduces.iter().zip(&faulty.reduces) {
            assert_eq!(a.end, b.end);
            assert_eq!(a.copy, b.copy);
        }
    }

    #[test]
    fn worker_crash_is_recovered_by_reexecution() {
        let mut cfg = HadoopConfig::icpp2011(4, 4, 4);
        cfg.straggler_prob = 0.0;
        let healthy = run_job(cfg.clone(), spec());
        // Kill worker host 3 mid-job (well inside the map phase).
        let crash_at = desim::SimTime::from_secs_f64(healthy.makespan.as_secs_f64() * 0.4);
        let plan = faults::FaultPlan::builder().crash(crash_at, 3).build();
        let report = run_job_faulty(cfg, spec(), plan);
        assert!(!report.job_failed, "crash must be absorbed, not fatal");
        assert_eq!(report.crashed_workers, 1);
        assert!(
            report.maps.len() >= 16,
            "all 16 splits commit (plus re-executions): {}",
            report.maps.len()
        );
        assert!(
            report.makespan > healthy.makespan,
            "losing a worker must cost time: {} vs {}",
            healthy.makespan,
            report.makespan
        );
        assert!(
            report.makespan.as_secs_f64() < healthy.makespan.as_secs_f64() * 3.0,
            "recovery should bound the slowdown: {} vs {}",
            healthy.makespan,
            report.makespan
        );
        // Deterministic replay: same plan, same result.
        let crash_at2 = desim::SimTime::from_secs_f64(healthy.makespan.as_secs_f64() * 0.4);
        let plan2 = faults::FaultPlan::builder().crash(crash_at2, 3).build();
        let again = run_job_faulty(
            {
                let mut c = HadoopConfig::icpp2011(4, 4, 4);
                c.straggler_prob = 0.0;
                c
            },
            spec(),
            plan2,
        );
        assert_eq!(report.makespan, again.makespan);
    }

    #[test]
    fn certain_failure_fails_the_job_after_max_attempts() {
        let mut cfg = HadoopConfig::icpp2011(4, 4, 4);
        cfg.task_failure_prob = 1.0;
        cfg.max_task_attempts = 3;
        let report = run_job(cfg, spec());
        assert!(report.job_failed, "always-failing maps must fail the job");
        // The failing task burned through its attempt budget.
        assert!(report.failed_map_attempts >= 3);
    }
}
