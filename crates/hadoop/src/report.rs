//! Per-task and per-phase timing records — the raw material of the paper's
//! Figure 1, Table I and Figure 6.

use desim::stats::OnlineStats;
use desim::SimTime;

/// Lifetime of one map task attempt.
#[derive(Debug, Clone, Copy)]
pub struct MapSpan {
    /// Scheduled on a tasktracker (JVM launch begins).
    pub start: SimTime,
    /// Output committed, slot freed.
    pub end: SimTime,
    /// Whether the input block was host-local.
    pub local: bool,
}

impl MapSpan {
    /// Wall-clock duration.
    pub fn duration(&self) -> SimTime {
        self.end - self.start
    }
}

/// Lifetime and phase breakdown of one reduce task (Figure 1's three series).
#[derive(Debug, Clone, Copy)]
pub struct ReduceSpan {
    /// Scheduled on a tasktracker.
    pub start: SimTime,
    /// Output committed.
    pub end: SimTime,
    /// Shuffle copy stage duration.
    pub copy: SimTime,
    /// Sort/merge stage duration.
    pub sort: SimTime,
    /// Reduce-function stage duration (including output write).
    pub reduce: SimTime,
}

impl ReduceSpan {
    /// Wall-clock duration.
    pub fn duration(&self) -> SimTime {
        self.end - self.start
    }
}

/// Everything the simulator records about one job execution.
#[derive(Debug, Clone, Default)]
pub struct JobReport {
    /// Job wall-clock time (submission to cleanup completion).
    pub makespan: SimTime,
    /// One record per map task (the winning attempt).
    pub maps: Vec<MapSpan>,
    /// One record per reduce task, indexed by reducer id.
    pub reduces: Vec<ReduceSpan>,
    /// Speculative duplicate map attempts launched.
    pub speculative_launched: u64,
    /// Duplicate attempts that finished after the task was already done
    /// (wasted work).
    pub speculative_wasted: u64,
    /// Map attempts that failed and were rescheduled.
    pub failed_map_attempts: u64,
    /// True if some map task exhausted its attempts and the job was failed.
    pub job_failed: bool,
    /// Map tasks re-executed because a worker crash destroyed their
    /// committed output (distinct from `failed_map_attempts`, which counts
    /// probabilistic attempt failures, and from speculation).
    pub maps_reexecuted: u64,
    /// Workers lost to injected node crashes during the job.
    pub crashed_workers: u64,
    /// Reduce tasks restarted from scratch on a surviving worker after
    /// their host crashed.
    pub restarted_reduces: u64,
    /// Shuffle payload bytes that actually crossed the disk/network during
    /// the copy phase (after any in-node combining and coded-multicast
    /// savings; excludes per-fetch seek/HTTP overhead bytes).
    pub shuffle_wire_bytes: u64,
}

impl JobReport {
    /// Table I's metric: total copy-stage time across all reducers, divided
    /// by the total execution time of all mappers and reducers.
    pub fn copy_fraction(&self) -> f64 {
        let copy: f64 = self.reduces.iter().map(|r| r.copy.as_secs_f64()).sum();
        let total: f64 = self
            .maps
            .iter()
            .map(|m| m.duration().as_secs_f64())
            .chain(self.reduces.iter().map(|r| r.duration().as_secs_f64()))
            .sum();
        if total == 0.0 {
            0.0
        } else {
            copy / total
        }
    }

    /// Copy-stage share of the reducers' own lifecycles (the paper's "95 %"
    /// observation under Figure 1).
    pub fn copy_share_of_reducers(&self) -> f64 {
        let copy: f64 = self.reduces.iter().map(|r| r.copy.as_secs_f64()).sum();
        let total: f64 = self
            .reduces
            .iter()
            .map(|r| r.duration().as_secs_f64())
            .sum();
        if total == 0.0 {
            0.0
        } else {
            copy / total
        }
    }

    /// Summary statistics of one reduce phase selected by `f`.
    pub fn reduce_phase_stats(&self, f: impl Fn(&ReduceSpan) -> SimTime) -> OnlineStats {
        let mut s = OnlineStats::new();
        for r in &self.reduces {
            s.add(f(r).as_secs_f64());
        }
        s
    }

    /// Drop the `n` largest copy-time reducers — the paper's Figure 1 "we
    /// delete 56 (7 * 8) values of reducers as their time reaches 4000 s"
    /// (the first reducer wave, whose copy stage waits for the entire map
    /// phase).
    pub fn without_top_copy_outliers(&self, n: usize) -> JobReport {
        let mut rs = self.reduces.clone();
        rs.sort_by_key(|r| std::cmp::Reverse(r.copy));
        let kept = rs.split_off(n.min(rs.len()));
        JobReport {
            reduces: kept,
            ..self.clone()
        }
    }

    /// Aggregate phase timeline: for each of `map`/`copy`/`sort`/`reduce`,
    /// the earliest start and latest end across all tasks. Per-reduce phase
    /// boundaries are reconstructed backwards from each task's `end` (the
    /// copy stage runs first, then sort, then reduce), so the timeline is
    /// derivable from the report alone. Phases with no tasks are omitted.
    pub fn phase_timeline(&self) -> Vec<(&'static str, SimTime, SimTime)> {
        let mut out = Vec::new();
        let extent = |iter: &mut dyn Iterator<Item = (SimTime, SimTime)>| {
            let mut lo: Option<SimTime> = None;
            let mut hi: Option<SimTime> = None;
            for (s, e) in iter {
                lo = Some(lo.map_or(s, |l| l.min(s)));
                hi = Some(hi.map_or(e, |h| h.max(e)));
            }
            lo.zip(hi)
        };
        if let Some((s, e)) = extent(&mut self.maps.iter().map(|m| (m.start, m.end))) {
            out.push(("map", s, e));
        }
        let copy = |r: &ReduceSpan| {
            let reduce_start = r.end - r.reduce;
            let sort_start = reduce_start - r.sort;
            (sort_start - r.copy, sort_start)
        };
        if let Some((s, e)) = extent(&mut self.reduces.iter().map(copy)) {
            out.push(("copy", s, e));
        }
        if let Some((s, e)) = extent(
            &mut self
                .reduces
                .iter()
                .map(|r| (r.end - r.reduce - r.sort, r.end - r.reduce)),
        ) {
            out.push(("sort", s, e));
        }
        if let Some((s, e)) = extent(&mut self.reduces.iter().map(|r| (r.end - r.reduce, r.end))) {
            out.push(("reduce", s, e));
        }
        out
    }

    /// Successful map executions that were plain first-time runs: total
    /// committed map spans minus crash-forced re-executions. Speculative
    /// duplicates are counted separately (`speculative_launched` /
    /// `speculative_wasted`) and never appear in `maps` unless they won.
    pub fn first_attempt_maps(&self) -> u64 {
        (self.maps.len() as u64).saturating_sub(self.maps_reexecuted)
    }

    /// One-line recovery summary for fault-injection reports.
    pub fn recovery_summary(&self) -> String {
        format!(
            "crashed_workers={} maps_reexecuted={} restarted_reduces={} \
             speculative={}(+{} wasted) failed_attempts={}",
            self.crashed_workers,
            self.maps_reexecuted,
            self.restarted_reduces,
            self.speculative_launched,
            self.speculative_wasted,
            self.failed_map_attempts,
        )
    }

    /// Fraction of map tasks that read their block locally.
    pub fn map_locality(&self) -> f64 {
        if self.maps.is_empty() {
            return 0.0;
        }
        self.maps.iter().filter(|m| m.local).count() as f64 / self.maps.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(copy: u64, sort: u64, reduce: u64) -> ReduceSpan {
        ReduceSpan {
            start: SimTime::ZERO,
            end: SimTime::from_secs(copy + sort + reduce),
            copy: SimTime::from_secs(copy),
            sort: SimTime::from_secs(sort),
            reduce: SimTime::from_secs(reduce),
        }
    }

    #[test]
    fn copy_fraction_arithmetic() {
        let report = JobReport {
            makespan: SimTime::from_secs(100),
            maps: vec![MapSpan {
                start: SimTime::ZERO,
                end: SimTime::from_secs(10),
                local: true,
            }],
            reduces: vec![span(20, 0, 10)],
            ..Default::default()
        };
        // copy 20 over total (10 + 30) = 0.5
        assert!((report.copy_fraction() - 0.5).abs() < 1e-12);
        assert!((report.copy_share_of_reducers() - 20.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn outlier_removal_drops_biggest_copies() {
        let report = JobReport {
            makespan: SimTime::ZERO,
            maps: vec![],
            reduces: vec![span(1, 0, 1), span(100, 0, 1), span(2, 0, 1)],
            ..Default::default()
        };
        let trimmed = report.without_top_copy_outliers(1);
        assert_eq!(trimmed.reduces.len(), 2);
        assert!(trimmed
            .reduces
            .iter()
            .all(|r| r.copy < SimTime::from_secs(50)));
    }

    #[test]
    fn empty_report_is_zero() {
        let r = JobReport::default();
        assert_eq!(r.copy_fraction(), 0.0);
        assert_eq!(r.map_locality(), 0.0);
        assert!(r.phase_timeline().is_empty());
    }

    #[test]
    fn phase_timeline_reconstructs_stage_extents() {
        let report = JobReport {
            makespan: SimTime::from_secs(100),
            maps: vec![MapSpan {
                start: SimTime::from_secs(1),
                end: SimTime::from_secs(11),
                local: true,
            }],
            // One reduce ending at t=41 with copy=20, sort=4, reduce=6:
            // copy [11,31], sort [31,35], reduce [35,41].
            reduces: vec![ReduceSpan {
                start: SimTime::from_secs(5),
                end: SimTime::from_secs(41),
                copy: SimTime::from_secs(20),
                sort: SimTime::from_secs(4),
                reduce: SimTime::from_secs(6),
            }],
            ..Default::default()
        };
        let tl = report.phase_timeline();
        let names: Vec<_> = tl.iter().map(|p| p.0).collect();
        assert_eq!(names, vec!["map", "copy", "sort", "reduce"]);
        let copy = tl.iter().find(|p| p.0 == "copy").unwrap();
        assert_eq!(
            (copy.1, copy.2),
            (SimTime::from_secs(11), SimTime::from_secs(31))
        );
        let reduce = tl.iter().find(|p| p.0 == "reduce").unwrap();
        assert_eq!(
            (reduce.1, reduce.2),
            (SimTime::from_secs(35), SimTime::from_secs(41))
        );
    }
}
