//! Hadoop 0.20.2 configuration knobs that matter to the paper's experiments.

use desim::SimTime;
use netsim::{ClusterSpec, RackLayout, SimShuffle};

/// Simulated Hadoop deployment parameters.
///
/// Defaults follow the paper's setup (Section II: Hadoop 0.20.2, 8 nodes =
/// 1 master + 7 slaves, 64 MB blocks) and the 0.20.2 shipping defaults for
/// everything the paper doesn't override.
#[derive(Debug, Clone)]
pub struct HadoopConfig {
    /// Cluster hardware (host 0 runs the JobTracker/NameNode; the rest are
    /// worker nodes running TaskTrackers/DataNodes).
    pub cluster: ClusterSpec,
    /// HDFS block size ("the block size adopts the default value of 64 MB").
    pub block_bytes: u64,
    /// Concurrent map slots per tasktracker (Table I varies 4–16).
    pub map_slots: usize,
    /// Concurrent reduce slots per tasktracker (Table I varies 2–16).
    pub reduce_slots: usize,
    /// TaskTracker heartbeat interval (0.20.2: 3 s for small clusters); a
    /// freed slot is refilled only at the next heartbeat — one map and one
    /// reduce assignment per heartbeat, as in 0.20's JobQueueTaskScheduler.
    pub heartbeat: SimTime,
    /// Per-task JVM launch cost (0.20.2 launched a fresh JVM per task unless
    /// reuse was configured; the paper doesn't configure reuse).
    pub jvm_start: SimTime,
    /// Job-level setup before any task can run (job client → JobTracker
    /// submission, split computation, setup task).
    pub job_setup: SimTime,
    /// Job cleanup after the last reduce.
    pub job_cleanup: SimTime,
    /// `io.sort.mb`: map-side sort buffer; map outputs larger than this
    /// spill multiple times and pay an extra on-disk merge pass.
    pub io_sort_bytes: u64,
    /// `mapred.reduce.parallel.copies`: concurrent shuffle fetch threads
    /// per reducer (0.20.2 default 5).
    pub parallel_copies: usize,
    /// Fraction of maps that must finish before reducers launch
    /// (`mapred.reduce.slowstart.completed.maps`, default 0.05).
    pub slowstart: f64,
    /// Reducer in-memory merge buffer; shuffled data beyond it merges on
    /// disk.
    pub merge_buffer_bytes: u64,
    /// Per-fetch overhead on the serving side: one (short-stroke, readahead-
    /// assisted) disk seek into the map output spill file plus the Jetty
    /// servlet request handling. This is the dominant cost of the copy stage
    /// for many-reducer jobs (each reducer fetches a tiny partition from
    /// every map output).
    pub fetch_seek: SimTime,
    /// Extra copy-path latency per fetch round (HTTP request/response over
    /// the reused connection).
    pub http_setup: SimTime,
    /// Number of reduce tasks for the job.
    pub n_reduces: usize,
    /// HDFS replication factor (default 3).
    pub replication: usize,
    /// Launch speculative duplicate attempts for straggling maps
    /// (`mapred.map.tasks.speculative.execution`, default true in 0.20).
    pub speculative: bool,
    /// Probability that a map attempt straggles (GC storm, slow disk, …).
    pub straggler_prob: f64,
    /// Duration multiplier of a straggling attempt.
    pub straggler_factor: f64,
    /// Probability that a map attempt fails outright (task JVM crash, disk
    /// error) and must be rescheduled.
    pub task_failure_prob: f64,
    /// Attempts per map task before the whole job is failed
    /// (`mapred.map.max.attempts`, default 4).
    pub max_task_attempts: usize,
    /// Deployment-level shuffle strategy ([`SimShuffle::resolve`]d against
    /// the job's [`netsim::JobSpec::shuffle`]): in-node combining merges
    /// the spills of a tasktracker's co-running map tasks before they are
    /// served; coded shuffle replicates map work `r`× to cut copy-phase
    /// wire volume `r`×. Baseline is bit-identical to the pre-strategy
    /// simulator.
    pub shuffle: SimShuffle,
    /// Rack topology layered over the flat cluster (rack uplinks +
    /// oversubscribed core). `None` keeps the single non-blocking switch.
    pub rack: Option<RackLayout>,
}

impl HadoopConfig {
    /// The paper's testbed with the given slot configuration and reduce
    /// count.
    pub fn icpp2011(map_slots: usize, reduce_slots: usize, n_reduces: usize) -> Self {
        HadoopConfig {
            cluster: ClusterSpec::icpp2011_testbed(),
            block_bytes: 64 << 20,
            map_slots,
            reduce_slots,
            heartbeat: SimTime::from_secs(3),
            jvm_start: SimTime::from_millis(1100),
            job_setup: SimTime::from_secs(6),
            job_cleanup: SimTime::from_secs(2),
            io_sort_bytes: 100 << 20,
            parallel_copies: 5,
            slowstart: 0.05,
            merge_buffer_bytes: 100 << 20,
            fetch_seek: SimTime::from_millis(5),
            http_setup: SimTime::from_micros(1500),
            n_reduces,
            replication: 3,
            speculative: true,
            straggler_prob: 0.02,
            straggler_factor: 4.0,
            task_failure_prob: 0.0,
            max_task_attempts: 4,
            shuffle: SimShuffle::Baseline,
            rack: None,
        }
    }

    /// Worker hosts (all hosts except host 0, the master).
    pub fn n_workers(&self) -> usize {
        self.cluster.hosts - 1
    }

    /// Total map slots across the cluster.
    pub fn total_map_slots(&self) -> usize {
        self.n_workers() * self.map_slots
    }

    /// Total reduce slots across the cluster.
    pub fn total_reduce_slots(&self) -> usize {
        self.n_workers() * self.reduce_slots
    }

    /// Sanity checks.
    pub fn validate(&self) -> Result<(), String> {
        if self.cluster.hosts < 2 {
            return Err("need a master and at least one worker".into());
        }
        if self.map_slots == 0 || self.reduce_slots == 0 {
            return Err("slot counts must be nonzero".into());
        }
        if self.block_bytes == 0 {
            return Err("block size must be nonzero".into());
        }
        if self.n_reduces == 0 {
            return Err("need at least one reduce task".into());
        }
        if !(0.0..=1.0).contains(&self.slowstart) {
            return Err("slowstart must be in [0,1]".into());
        }
        if self.replication == 0 {
            return Err("replication must be >= 1".into());
        }
        if !(0.0..=1.0).contains(&self.straggler_prob) || self.straggler_factor < 1.0 {
            return Err("straggler parameters out of range".into());
        }
        if !(0.0..=1.0).contains(&self.task_failure_prob) || self.max_task_attempts == 0 {
            return Err("task failure parameters out of range".into());
        }
        self.shuffle.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = HadoopConfig::icpp2011(8, 8, 2345);
        assert_eq!(c.n_workers(), 7);
        assert_eq!(c.total_map_slots(), 56);
        assert_eq!(c.total_reduce_slots(), 56);
        assert_eq!(c.block_bytes, 64 << 20);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = HadoopConfig::icpp2011(4, 2, 10);
        c.map_slots = 0;
        assert!(c.validate().is_err());
        let mut c = HadoopConfig::icpp2011(4, 2, 10);
        c.slowstart = 1.5;
        assert!(c.validate().is_err());
        let mut c = HadoopConfig::icpp2011(4, 2, 10);
        c.n_reduces = 0;
        assert!(c.validate().is_err());
    }
}
