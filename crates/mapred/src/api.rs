//! The MapReduce programming model shared by every engine in the suite.
//!
//! An application implements [`MapReduceApp`]; an input implements
//! [`InputFormat`]. The same application object then runs unchanged on:
//!
//! * [`crate::local::run_local`] — the single-process reference engine;
//! * [`crate::engine::run_mpid`] — real execution over MPI-D (`mpid` +
//!   `mpi-rt` ranks);
//! * [`crate::sim::run_sim_mpid`] — the cluster-scale cost simulation of the
//!   MPI-D pipeline (paper Figure 6's left bars).
//!
//! This mirrors how the paper's WordCount is "implemented based on above
//! simulation system with the MPI-D library" while typical Hadoop apps go
//! "through context collectors to hide the communication processes": the
//! app writes `map`/`reduce` against collectors and the engine wires them to
//! `MPI_D_Send`/`MPI_D_Recv`.

use mpid::kv::{Key, Kv, Value};
use mpid::partition::{HashPartitioner, Partitioner};

/// A MapReduce application: map/reduce logic plus optional combiner and
/// partitioner.
pub trait MapReduceApp: Send + Sync + 'static {
    /// Input record key (e.g. byte offset).
    type InKey: Kv + Clone + Send + 'static;
    /// Input record value (e.g. text line).
    type InVal: Kv + Clone + Send + 'static;
    /// Intermediate key.
    type MidKey: Key;
    /// Intermediate value.
    type MidVal: Value;
    /// Output key.
    type OutKey: Key;
    /// Output value.
    type OutVal: Value;

    /// The map function: emit intermediate pairs via `emit`.
    fn map(
        &self,
        key: Self::InKey,
        value: Self::InVal,
        emit: &mut dyn FnMut(Self::MidKey, Self::MidVal),
    );

    /// The reduce function: fold one key's value list into output pairs.
    fn reduce(
        &self,
        key: Self::MidKey,
        values: Vec<Self::MidVal>,
        emit: &mut dyn FnMut(Self::OutKey, Self::OutVal),
    );

    /// Optional combiner: fold a value into an accumulator. Must be
    /// associative and commutative (the engines may apply it zero or more
    /// times at arbitrary spill boundaries).
    #[allow(clippy::type_complexity)]
    fn combine(&self) -> Option<fn(&mut Self::MidVal, Self::MidVal)> {
        None
    }

    /// Partition assignment for an intermediate key (default: stable
    /// hash-mod, the Hadoop `HashPartitioner` analog).
    fn partition(&self, key: &Self::MidKey, n_reducers: usize) -> usize {
        HashPartitioner.partition(key, n_reducers)
    }
}

/// A splittable input source. Record iteration is lazy so synthetic inputs
/// can be far larger than memory.
pub trait InputFormat: Send + Sync + 'static {
    /// Record key type.
    type Key: Kv + Clone + Send + 'static;
    /// Record value type.
    type Val: Kv + Clone + Send + 'static;

    /// Number of splits.
    fn n_splits(&self) -> usize;

    /// Iterate the records of one split.
    ///
    /// # Panics
    /// Implementations may panic if `split >= n_splits()`.
    fn records(&self, split: usize) -> Box<dyn Iterator<Item = (Self::Key, Self::Val)> + '_>;

    /// Total records across all splits (walks every split by default).
    fn total_records(&self) -> usize {
        (0..self.n_splits()).map(|s| self.records(s).count()).sum()
    }
}

/// In-memory input: one `Vec` of records per split.
pub struct VecInput<K, V> {
    splits: Vec<Vec<(K, V)>>,
}

impl<K, V> VecInput<K, V> {
    /// Wrap pre-split records.
    pub fn new(splits: Vec<Vec<(K, V)>>) -> Self {
        VecInput { splits }
    }

    /// Split a flat record list into `n` round-robin splits.
    pub fn round_robin(records: Vec<(K, V)>, n: usize) -> Self {
        assert!(n > 0);
        let mut splits: Vec<Vec<(K, V)>> = (0..n).map(|_| Vec::new()).collect();
        for (i, r) in records.into_iter().enumerate() {
            splits[i % n].push(r);
        }
        VecInput { splits }
    }
}

impl<K, V> InputFormat for VecInput<K, V>
where
    K: Kv + Clone + Send + Sync + 'static,
    V: Kv + Clone + Send + Sync + 'static,
{
    type Key = K;
    type Val = V;
    fn n_splits(&self) -> usize {
        self.splits.len()
    }
    fn records(&self, split: usize) -> Box<dyn Iterator<Item = (K, V)> + '_> {
        Box::new(self.splits[split].iter().cloned())
    }
}

/// Text-line input: each split is a document; records are
/// `(line_number, line)` — the classic `TextInputFormat` shape.
pub struct TextInput {
    docs: Vec<String>,
}

impl TextInput {
    /// One split per document.
    pub fn new(docs: Vec<String>) -> Self {
        TextInput { docs }
    }
}

impl InputFormat for TextInput {
    type Key = u64;
    type Val = String;
    fn n_splits(&self) -> usize {
        self.docs.len()
    }
    fn records(&self, split: usize) -> Box<dyn Iterator<Item = (u64, String)> + '_> {
        Box::new(
            self.docs[split]
                .lines()
                .enumerate()
                .map(|(i, l)| (i as u64, l.to_string())),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_input_round_robin_distributes() {
        let records: Vec<(u64, u64)> = (0..10).map(|i| (i, i * i)).collect();
        let input = VecInput::round_robin(records, 3);
        assert_eq!(input.n_splits(), 3);
        assert_eq!(input.total_records(), 10);
        let sizes: Vec<usize> = (0..3).map(|s| input.records(s).count()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn text_input_lines() {
        let input = TextInput::new(vec!["a b\nc".into(), "".into()]);
        let recs: Vec<_> = input.records(0).collect();
        assert_eq!(recs, vec![(0, "a b".to_string()), (1, "c".to_string())]);
        assert_eq!(input.records(1).count(), 0);
    }
}
