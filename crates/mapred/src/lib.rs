//! # mapred — the MapReduce programming model and its execution engines
//!
//! One application definition ([`MapReduceApp`]) runs on three engines:
//!
//! * [`local::run_local`] — sequential single-process reference;
//! * [`engine::run_mpid`] — **real** distributed execution over MPI-D
//!   (`mpid` on `mpi-rt`): rank 0 master, mapper ranks pulling splits,
//!   reducer ranks consuming `MPI_D_Recv` groups;
//! * [`sim::run_sim_mpid`] — cluster-scale cost simulation of the same
//!   pipeline on the paper's 8-node testbed model (Figure 6's MPI-D side).
//!
//! The engines are cross-checked in `tests/`: real MPI-D output must equal
//! the local reference on every workload.

#![warn(missing_docs)]

pub mod api;
pub mod checkpoint;
pub mod engine;
pub mod local;
pub mod serveplan;
pub mod sim;

pub use api::{InputFormat, MapReduceApp, TextInput, VecInput};
pub use checkpoint::{run_mpid_checkpointed, CheckpointStats};
pub use engine::{run_mpid, run_mpid_traced, JobOutput, MpidEngineConfig};
pub use local::run_local;
pub use serveplan::serve_plan;
pub use sim::{
    run_sim_mpid, run_sim_mpid_ft, run_sim_mpid_ft_traced, run_sim_mpid_traced, FtOutcome,
    MpidFtMode, SimMpidConfig, SimMpidFtReport, SimMpidReport,
};
