//! Cluster-scale cost simulation of the MPI-D execution pipeline — the
//! MPI-D side of the paper's Figure 6, on the same simulated testbed as
//! `hadoop-sim`.
//!
//! The simulated process layout is the paper's: rank 0 is the master on the
//! head node; mapper and reducer processes are placed round-robin on the
//! worker hosts ("49 processes as concurrent mappers, and 1 process as the
//! reducer"). Mechanisms modelled:
//!
//! * near-zero startup (an `mpiexec` launch, not a JobTracker submission);
//! * pull-based split assignment over MPI (sub-millisecond per request,
//!   versus Hadoop's 3 s heartbeats);
//! * local sequential disk reads of each split;
//! * map CPU at native-code speed — the prototype is C on MPICH2, so the
//!   per-byte map cost is `native_cpu_factor` × the Java cost in the shared
//!   [`JobSpec`];
//! * a memory-pressure term: unlike Hadoop, which bounds per-task state by
//!   spilling through `io.sort.mb`, the MPI-D prototype's per-process hash
//!   tables and receive buffers grow with the per-process data share, and
//!   cache locality degrades. Calibrated (+25 % per
//!   doubling of per-mapper volume beyond a 21 MB reference) — this is what
//!   reproduces the superlinear growth visible in the paper's own Figure 6
//!   numbers (1 GB → 3.9 s but 100 GB → 1129 s, 289× time for 100× data);
//! * shuffle as MPI flows (combined frames over the fluid network, paying
//!   the MPI streaming efficiency, contending on the reducer's downlink);
//! * streaming reduce overlapped with reception, then a final output write.

use desim::{Scheduler, Sim, SimTime};
use faults::{FaultKind, FaultPlan};
use netsim::{
    Cluster, ClusterSpec, HasNet, HostId, JobSpec, MpiModel, Net, RackLayout, Route, SimShuffle,
    Transport,
};
use obs::{ArgValue, Tracer};
use std::collections::BTreeMap;

/// Configuration of the simulated MPI-D deployment.
#[derive(Debug, Clone)]
pub struct SimMpidConfig {
    /// Cluster hardware (host 0 = master/head node).
    pub cluster: ClusterSpec,
    /// Mapper processes (paper Figure 6: 49).
    pub n_mappers: usize,
    /// Reducer processes (paper Figure 6: 1).
    pub n_reducers: usize,
    /// Bytes per input split.
    pub split_bytes: u64,
    /// Process launch + `MPI_D_Init` time.
    pub startup: SimTime,
    /// Round-trip cost of one split request to the master.
    pub master_rpc: SimTime,
    /// Map CPU cost relative to the Java cost in the [`JobSpec`]
    /// (native C prototype vs. Hadoop's JVM path).
    pub native_cpu_factor: f64,
    /// Extra per-byte CPU per doubling of per-mapper data volume beyond
    /// [`SimMpidConfig::pressure_ref_bytes`] (memory-hierarchy pressure of
    /// the prototype's unbounded in-process state).
    pub pressure_per_doubling: f64,
    /// Reference per-mapper volume at which pressure is 1.0×.
    pub pressure_ref_bytes: u64,
    /// Overlap spill sends with the next split (the `MPI_Isend` mode).
    pub overlap_sends: bool,
    /// Frame granularity for pipelined spill shipping: combined map output
    /// ships in frames of this size *while the split is still being
    /// mapped* (the paper's `MPI_D_Send` design — data movement overlaps
    /// map computation on the producing mapper). `0` disables pipelining
    /// and ships the whole split output after the map completes.
    pub ship_frame_bytes: u64,
    /// Worker threads per data-path process (the real runtime's
    /// `MpidConfig::threads`). The map function itself stays serial per
    /// split, but the combiner/buffer work on the mapper and the sort-merge
    /// on the reducer divide across workers (Mimir's `tnum` model,
    /// idealized — no contention term). `1` = the single-threaded model,
    /// bit-identical to the pre-threading simulator.
    pub threads: usize,
    /// Deployment-level shuffle strategy ([`SimShuffle::resolve`]d against
    /// the job's own [`JobSpec::shuffle`]): in-node combining merges the
    /// spills of co-located mapper processes before framing; coded shuffle
    /// replicates map work `r`× to cut wire volume `r`×. Baseline is
    /// bit-identical to the pre-strategy simulator.
    pub shuffle: SimShuffle,
    /// Rack topology layered over the flat cluster (rack uplinks +
    /// oversubscribed core). `None` keeps the single non-blocking switch.
    pub rack: Option<RackLayout>,
}

impl SimMpidConfig {
    /// The paper's Figure 6 deployment: 8 nodes, 49 mappers + 1 reducer +
    /// 1 master, 64 MB splits.
    pub fn icpp2011_fig6() -> Self {
        SimMpidConfig {
            cluster: ClusterSpec::icpp2011_testbed(),
            n_mappers: 49,
            n_reducers: 1,
            split_bytes: 64 << 20,
            startup: SimTime::from_millis(300),
            master_rpc: SimTime::from_micros(1100), // ~2× MPI small-message latency
            native_cpu_factor: 0.23,
            pressure_per_doubling: 0.25,
            pressure_ref_bytes: 21 << 20,
            overlap_sends: false,
            ship_frame_bytes: 512 << 10,
            threads: 1,
            shuffle: SimShuffle::Baseline,
            rack: None,
        }
    }

    /// Size splits the way the paper's runs do: data is pre-distributed
    /// evenly across the mapper processes, in chunks of at most one HDFS
    /// block (so 1 GB over 49 mappers runs as ~21 MB splits, while 100 GB
    /// runs as 64 MB splits, 32 per mapper).
    pub fn with_auto_splits(mut self, input_bytes: u64) -> Self {
        let even = input_bytes.div_ceil(self.n_mappers as u64);
        self.split_bytes = even.clamp(1 << 20, 64 << 20);
        self
    }

    fn validate(&self) {
        assert!(self.cluster.hosts >= 2, "need head node plus workers");
        assert!(self.n_mappers > 0 && self.n_reducers > 0);
        assert!(self.split_bytes > 0);
        assert!(self.native_cpu_factor > 0.0);
        assert!(self.pressure_per_doubling >= 0.0);
        assert!(self.pressure_ref_bytes > 0);
        assert!(self.threads >= 1, "threads must be at least 1");
        self.shuffle.validate().expect("invalid shuffle strategy");
    }
}

/// Timing report of one simulated MPI-D job.
#[derive(Debug, Clone)]
pub struct SimMpidReport {
    /// Wall-clock job time.
    pub makespan: SimTime,
    /// When the last mapper finished (map + send complete).
    pub map_finish: SimTime,
    /// Total bytes shuffled to reducers (reducer-input volume, after any
    /// in-node combining).
    pub shuffle_bytes: u64,
    /// Bytes that actually crossed the network (or loopback) for the
    /// shuffle: reducer-input volume inflated by the MPI streaming
    /// efficiency, deflated by coded multicast.
    pub wire_bytes: u64,
    /// Per-mapper busy spans `(start, end)`.
    pub mapper_spans: Vec<(SimTime, SimTime)>,
    /// The effective map-CPU multiplier applied (native factor × pressure).
    pub cpu_multiplier: f64,
}

impl SimMpidReport {
    /// Aggregate phase timeline derived from the report: startup, the map
    /// phase (earliest mapper start to last mapper finish, which includes
    /// reads and shuffle sends), and the reducer tail.
    pub fn phase_timeline(&self) -> Vec<(&'static str, SimTime, SimTime)> {
        let map_start = self
            .mapper_spans
            .iter()
            .map(|&(s, _)| s)
            .min()
            .unwrap_or(SimTime::ZERO);
        vec![
            ("startup", SimTime::ZERO, map_start),
            (obs::names::SPAN_MAP, map_start, self.map_finish),
            (obs::names::SPAN_REDUCE_TAIL, self.map_finish, self.makespan),
        ]
    }
}

struct MpidSim {
    net: Net<MpidSim>,
    cfg: SimMpidConfig,
    spec: JobSpec,
    // split queue
    next_split: usize,
    n_splits: usize,
    split_input: Vec<u64>,
    split_home: Vec<HostId>,
    mapper_host: Vec<HostId>,
    reducer_host: Vec<HostId>,
    // progress
    mappers_done: usize,
    sends_in_flight: usize,
    mapper_spans: Vec<(SimTime, SimTime)>,
    // reducer bookkeeping
    first_arrival: Option<SimTime>,
    shuffle_bytes: u64,
    wire_bytes: u64,
    cpu_multiplier: f64,
    mpi_efficiency: f64,
    // Resolved shuffle strategy and its volume factors (all 1.0 at
    // baseline, keeping that path bit-identical).
    shuffle: SimShuffle,
    data_factor: f64,
    code_factor: f64,
    report_makespan: SimTime,
    finished: bool,
    reduce_started: bool,
    tracer: Option<Tracer>,
    // (mapper, split) → (ship start ns — `None` until the first frame
    // ships, flows outstanding, shuffled bytes). Drives both the traced
    // `ship` span and the blocking-send handoff to the next split.
    ship_state: BTreeMap<(usize, usize), (Option<u64>, usize, u64)>,
    // Benign (crash-free) fault schedule: degradations, partitions and
    // straggler windows. Crashes are handled by the FT driver above the sim.
    plan: FaultPlan,
}

impl HasNet for MpidSim {
    fn net(&mut self) -> &mut Net<MpidSim> {
        &mut self.net
    }
}

impl MpidSim {
    fn new(cfg: SimMpidConfig, spec: JobSpec, plan: FaultPlan) -> Self {
        cfg.validate();
        spec.validate().expect("invalid job spec");
        assert!(
            plan.first_crash().is_none(),
            "MpidSim takes a benign plan; crashes are driver-level (run_sim_mpid_ft)"
        );
        plan.validate(cfg.cluster.hosts)
            .expect("invalid fault plan");
        let n_splits = (spec.input_bytes.div_ceil(cfg.split_bytes)).max(1) as usize;
        let mut split_input = vec![cfg.split_bytes; n_splits];
        let tail = spec.input_bytes % cfg.split_bytes;
        if tail != 0 {
            split_input[n_splits - 1] = tail;
        }
        let workers = cfg.cluster.hosts - 1;
        // "we distribute all input data across all nodes to guarantee the
        // data accessing locally": split s lives where mapper (s mod M) runs.
        let mapper_host: Vec<HostId> = (0..cfg.n_mappers)
            .map(|i| HostId(1 + i % workers))
            .collect();
        let split_home: Vec<HostId> = (0..n_splits)
            .map(|s| mapper_host[s % cfg.n_mappers])
            .collect();
        let reducer_host: Vec<HostId> = (0..cfg.n_reducers)
            .map(|i| HostId(1 + (workers - 1 - i % workers)))
            .collect();
        // Memory-pressure multiplier from the per-mapper data share.
        let share = spec.input_bytes as f64 / cfg.n_mappers as f64;
        let ref_b = cfg.pressure_ref_bytes as f64;
        let doublings = (share / ref_b).log2().max(0.0);
        let cpu_multiplier = cfg.native_cpu_factor * (1.0 + cfg.pressure_per_doubling * doublings);
        let mpi_efficiency = {
            // Streaming efficiency of frame-sized MPI messages.
            let m = MpiModel::default();
            m.stream_bandwidth(512 * 1024) / m.peak_bw
        };
        // Shuffle strategy: the deployment knob wins over the job's spec.
        // Co-location for in-node combining is the round-robin mapper
        // placement above — `ceil(M / workers)` mapper processes per host.
        let shuffle = SimShuffle::resolve(cfg.shuffle, spec.shuffle);
        let colocated = cfg.n_mappers.div_ceil(workers);
        let data_factor = shuffle.data_factor(colocated, spec.combine_ratio);
        let code_factor = shuffle.code_factor();
        let cluster = match &cfg.rack {
            Some(l) => Cluster::with_racks(cfg.cluster.clone(), l.clone()),
            None => Cluster::new(cfg.cluster.clone()),
        };
        MpidSim {
            net: Net::new(cluster),
            spec,
            next_split: 0,
            n_splits,
            split_input,
            split_home,
            mapper_spans: vec![(SimTime::ZERO, SimTime::ZERO); cfg.n_mappers],
            mapper_host,
            reducer_host,
            mappers_done: 0,
            sends_in_flight: 0,
            first_arrival: None,
            shuffle_bytes: 0,
            wire_bytes: 0,
            cpu_multiplier,
            mpi_efficiency,
            shuffle,
            data_factor,
            code_factor,
            report_makespan: SimTime::ZERO,
            finished: false,
            reduce_started: false,
            tracer: None,
            ship_state: BTreeMap::new(),
            plan,
            cfg,
        }
    }

    /// Install a trace sink on the job and its network, naming the lanes
    /// (pid 0 = master, pid 1.. = workers; mapper `m` traces on its host's
    /// lane with tid `m`).
    fn set_tracer(&mut self, tracer: Tracer) {
        tracer.set_process_name(0, "master");
        for h in 1..self.cfg.cluster.hosts {
            tracer.set_process_name(h as u32, format!("worker-{h}"));
        }
        for (m, host) in self.mapper_host.iter().enumerate() {
            tracer.set_thread_name(host.0 as u32, m as u32, format!("mapper-{m}"));
        }
        self.net.set_tracer(tracer.clone());
        // 100 ms of simulated time between utilization samples: fine enough
        // to see the shuffle ramp in multi-minute jobs, coarse enough that
        // the samples stay a small fraction of the trace.
        self.net.set_util_sampling(SimTime::from_millis(100));
        self.tracer = Some(tracer);
    }

    fn start(sim: &mut Sim<MpidSim>) {
        let startup = sim.state.cfg.startup;
        let n = sim.state.cfg.n_mappers;
        for m in 0..n {
            sim.schedule(startup, move |s: &mut MpidSim, sc| {
                s.mapper_spans[m].0 = sc.now();
                Self::request_split(s, sc, m);
            });
        }
        Self::schedule_faults(sim);
    }

    /// Arm the benign fault events: disk/NIC degradations rescale fluid
    /// rates mid-flow, partitions stall and resume flows. Stragglers are
    /// queried at compute time via [`FaultPlan::cpu_factor`].
    fn schedule_faults(sim: &mut Sim<MpidSim>) {
        for ev in sim.state.plan.events().to_vec() {
            let host = HostId(ev.host);
            match ev.kind {
                FaultKind::NodeCrash => unreachable!("checked in MpidSim::new"),
                FaultKind::DiskSlowdown { factor } => {
                    sim.schedule(ev.at, move |s: &mut MpidSim, sc| {
                        if !s.finished {
                            Net::set_disk_factor(s, sc, host, factor);
                        }
                    });
                }
                FaultKind::NicDegrade { factor } => {
                    sim.schedule(ev.at, move |s: &mut MpidSim, sc| {
                        if !s.finished {
                            Net::set_nic_factor(s, sc, host, factor);
                        }
                    });
                }
                FaultKind::LinkPartition { peer, heal_at } => {
                    let peer = HostId(peer);
                    sim.schedule(ev.at, move |s: &mut MpidSim, sc| {
                        if !s.finished {
                            Net::cut_link(s, sc, host, peer);
                        }
                    });
                    sim.schedule(heal_at, move |s: &mut MpidSim, sc| {
                        if !s.finished {
                            Net::heal_link(s, sc, host, peer);
                        }
                    });
                }
                FaultKind::StragglerCpu { .. } => {}
            }
        }
    }

    /// Mapper `m` asks the master for work (paper: pull-based assignment).
    fn request_split(s: &mut MpidSim, sc: &mut Scheduler<MpidSim>, m: usize) {
        let rpc = s.cfg.master_rpc;
        sc.schedule_in(rpc, move |s: &mut MpidSim, sc| {
            if s.next_split < s.n_splits {
                let split = s.next_split;
                s.next_split += 1;
                Self::read_split(s, sc, m, split);
            } else {
                Self::mapper_done(s, sc, m);
            }
        });
    }

    fn read_split(s: &mut MpidSim, sc: &mut Scheduler<MpidSim>, m: usize, split: usize) {
        let my_host = s.mapper_host[m];
        let home = s.split_home[split];
        let bytes = s.split_input[split];
        let route = if home == my_host {
            Route::DiskRead(my_host)
        } else {
            Route::RemoteRead {
                from: home,
                to: my_host,
            }
        };
        // One seek to open the split file.
        let seek_bytes = (0.008 * s.cfg.cluster.disk_read_bytes_per_sec) as u64;
        let read_start = sc.now().as_nanos();
        Net::start_flow(s, sc, route, bytes + seek_bytes, 1.0, move |s, sc| {
            if let Some(t) = &s.tracer {
                t.complete(
                    my_host.0 as u32,
                    m as u32,
                    obs::names::SPAN_READ,
                    obs::names::CAT_MPID_PHASE,
                    read_start,
                    sc.now().as_nanos(),
                    vec![("bytes", ArgValue::U64(bytes))],
                );
            }
            Self::map_split(s, sc, m, split);
        });
    }

    fn map_split(s: &mut MpidSim, sc: &mut Scheduler<MpidSim>, m: usize, split: usize) {
        let bytes = s.split_input[split];
        // An injected straggler multiplies the whole split's compute (the
        // factor ×1.0 for an empty plan keeps the cost bit-identical).
        let injected = s.plan.cpu_factor(s.mapper_host[m].0, sc.now());
        // The map function is serial per split; the combiner/buffer share
        // divides across the process's worker threads (threads = 1 keeps
        // the whole expression equal to `spec.map_cpu_secs(bytes)`).
        // Coded shuffle runs the map function `r` times (replicated
        // placement); in-node combining pays a second combine pass over the
        // host's merged post-combine spills. Both factors are 1.0/absent at
        // baseline.
        let map_ns = bytes as f64 * s.spec.map_cpu_ns_per_byte * s.shuffle.map_work_factor();
        let comb_ns = s.spec.map_output_bytes(bytes) as f64 * s.spec.combine_cpu_ns_per_byte
            / s.cfg.threads as f64;
        let innode_ns = if s.shuffle == SimShuffle::InNodeCombine {
            s.spec.shuffle_bytes(bytes) as f64 * s.spec.combine_cpu_ns_per_byte
                / s.cfg.threads as f64
        } else {
            0.0
        };
        let cpu_secs = (map_ns + comb_ns + innode_ns) * 1e-9 * s.cpu_multiplier * injected;
        let map_start = sc.now().as_nanos();
        // Pipelined spill shipping (the paper's `MPI_D_Send` design): the
        // combined output accrues over the map compute and ships in
        // frame-sized spills as each is produced, so data movement overlaps
        // map computation on the producing mapper. The final frame is only
        // ready when the map is.
        let shuffled = ((s.spec.shuffle_bytes(bytes) as f64) * s.data_factor) as u64;
        s.shuffle_bytes += shuffled;
        let n_frames = match s.cfg.ship_frame_bytes {
            0 => 1,
            f => (shuffled / f).clamp(1, 64) as usize,
        };
        s.ship_state
            .insert((m, split), (None, n_frames * s.cfg.n_reducers, shuffled));
        let per_frame = shuffled / n_frames as u64;
        for j in 1..=n_frames {
            let at = SimTime::from_secs_f64(cpu_secs * j as f64 / n_frames as f64);
            let last_frame = j == n_frames;
            let fbytes = if last_frame {
                shuffled - per_frame * (n_frames as u64 - 1)
            } else {
                per_frame
            };
            sc.schedule_in(at, move |s: &mut MpidSim, sc| {
                if last_frame {
                    if let Some(t) = &s.tracer {
                        t.complete(
                            s.mapper_host[m].0 as u32,
                            m as u32,
                            obs::names::SPAN_MAP,
                            obs::names::CAT_MPID_PHASE,
                            map_start,
                            sc.now().as_nanos(),
                            vec![("bytes", ArgValue::U64(bytes))],
                        );
                    }
                }
                Self::ship_frame(s, sc, m, split, fbytes, last_frame);
            });
        }
    }

    /// Ship one produced frame of this split's combined output to the
    /// reducers as MPI messages.
    fn ship_frame(
        s: &mut MpidSim,
        sc: &mut Scheduler<MpidSim>,
        m: usize,
        split: usize,
        fbytes: u64,
        last_frame: bool,
    ) {
        let my_host = s.mapper_host[m];
        let n_red = s.cfg.n_reducers;
        let per_red = fbytes / n_red as u64;
        if let Some((start, _, _)) = s.ship_state.get_mut(&(m, split)) {
            if start.is_none() {
                *start = Some(sc.now().as_nanos());
            }
        }
        // Wire bytes inflated by the MPI streaming efficiency for
        // frame-sized messages.
        for r in 0..n_red {
            let dst = s.reducer_host[r];
            // Coded multicast deflates what crosses the wire (the reducer
            // decodes the full volume back out of the coded stream).
            let wire = ((per_red as f64) / s.mpi_efficiency * s.code_factor) as u64;
            s.wire_bytes += wire;
            let route = if dst == my_host {
                Route::Loopback(my_host)
            } else {
                Route::HostToHost { src: my_host, dst }
            };
            s.sends_in_flight += 1;
            Net::start_flow(s, sc, route, wire, 1.0, move |s, sc| {
                s.sends_in_flight -= 1;
                if s.first_arrival.is_none() {
                    s.first_arrival = Some(sc.now());
                    if let Some(t) = &s.tracer {
                        t.instant(
                            s.reducer_host[0].0 as u32,
                            0,
                            obs::names::INST_FIRST_ARRIVAL,
                            obs::names::CAT_MPID,
                            sc.now().as_nanos(),
                        );
                    }
                }
                let mut drained = false;
                if let Some((_, left, _)) = s.ship_state.get_mut(&(m, split)) {
                    *left -= 1;
                    drained = *left == 0;
                }
                if drained {
                    let (start, _, bytes) = s.ship_state.remove(&(m, split)).expect("ship state");
                    if let Some(t) = &s.tracer {
                        t.complete(
                            s.mapper_host[m].0 as u32,
                            m as u32,
                            obs::names::SPAN_SHIP,
                            obs::names::CAT_MPID_PHASE,
                            start.unwrap_or_else(|| sc.now().as_nanos()),
                            sc.now().as_nanos(),
                            vec![("shuffled_bytes", ArgValue::U64(bytes))],
                        );
                    }
                    // Blocking-send mode: the mapper proceeds only once the
                    // split's spills have all drained.
                    if !s.cfg.overlap_sends {
                        Self::request_split(s, sc, m);
                    }
                }
                Self::maybe_finish(s, sc);
            });
        }
        // Isend mode: once the last frame is handed to MPI the mapper
        // overlaps the remaining drain with its next split.
        if last_frame && s.cfg.overlap_sends {
            Self::request_split(s, sc, m);
        }
    }

    fn mapper_done(s: &mut MpidSim, sc: &mut Scheduler<MpidSim>, m: usize) {
        s.mapper_spans[m].1 = sc.now();
        s.mappers_done += 1;
        if let Some(t) = &s.tracer {
            t.counter(
                0,
                obs::names::M_MPID_MAPPERS_DONE,
                obs::names::CAT_MPID,
                sc.now().as_nanos(),
                s.mappers_done as f64,
            );
            t.metrics().inc(obs::names::M_MPID_MAPPERS_DONE, 1);
        }
        Self::maybe_finish(s, sc);
    }

    /// Once every mapper is done and every frame has landed, run the
    /// reducer tail: leftover reduce CPU (streaming reduce overlaps
    /// reception) plus the final output write.
    fn maybe_finish(s: &mut MpidSim, sc: &mut Scheduler<MpidSim>) {
        if s.reduce_started || s.mappers_done < s.cfg.n_mappers || s.sends_in_flight > 0 {
            return;
        }
        s.reduce_started = true;
        let per_red = s.shuffle_bytes / s.cfg.n_reducers as u64;
        // The reducer's sort-merge splits into disjoint key ranges across
        // worker threads (idealized: no merge-boundary overhead).
        let total_cpu =
            s.spec.reduce_cpu_secs(per_red) * s.cfg.native_cpu_factor / s.cfg.threads as f64;
        let overlapped = s
            .first_arrival
            .map(|t| (sc.now() - t).as_secs_f64())
            .unwrap_or(0.0);
        let injected = s.plan.cpu_factor(s.reducer_host[0].0, sc.now());
        let remaining = (total_cpu * injected - overlapped).max(0.0);
        let out_bytes = s.spec.output_bytes(per_red);
        let tail_start = sc.now().as_nanos();
        sc.schedule_in(
            SimTime::from_secs_f64(remaining),
            move |s: &mut MpidSim, sc| {
                // Reducers write their outputs in parallel on their hosts.
                let host = s.reducer_host[0];
                Net::disk_write(s, sc, host, out_bytes, move |s, sc| {
                    s.finished = true;
                    s.report_makespan = sc.now();
                    if let Some(t) = &s.tracer {
                        t.complete(
                            host.0 as u32,
                            u32::MAX,
                            obs::names::SPAN_REDUCE_TAIL,
                            obs::names::CAT_MPID_PHASE,
                            tail_start,
                            sc.now().as_nanos(),
                            vec![],
                        );
                        t.instant(
                            0,
                            0,
                            obs::names::INST_JOB_FINISHED,
                            obs::names::CAT_MPID,
                            sc.now().as_nanos(),
                        );
                    }
                });
            },
        );
    }
}

/// Execute one simulated MPI-D job.
pub fn run_sim_mpid(cfg: SimMpidConfig, spec: JobSpec) -> SimMpidReport {
    run_sim_mpid_inner(cfg, spec, FaultPlan::none(), None)
}

/// Like [`run_sim_mpid`], but recording per-split read/map/ship spans, the
/// reducer tail, and network flow spans into `tracer` (simulated-time
/// timestamps — deterministic for a given config and spec).
pub fn run_sim_mpid_traced(cfg: SimMpidConfig, spec: JobSpec, tracer: Tracer) -> SimMpidReport {
    run_sim_mpid_inner(cfg, spec, FaultPlan::none(), Some(tracer))
}

fn run_sim_mpid_inner(
    cfg: SimMpidConfig,
    spec: JobSpec,
    plan: FaultPlan,
    tracer: Option<Tracer>,
) -> SimMpidReport {
    let mut sim = Sim::new(MpidSim::new(cfg, spec, plan));
    if let Some(t) = tracer {
        sim.state.set_tracer(t);
    }
    MpidSim::start(&mut sim);
    sim.run();
    assert!(sim.state.finished, "MPI-D simulation did not complete");
    let map_finish = sim
        .state
        .mapper_spans
        .iter()
        .map(|&(_, e)| e)
        .max()
        .unwrap_or(SimTime::ZERO);
    SimMpidReport {
        makespan: sim.state.report_makespan,
        map_finish,
        shuffle_bytes: sim.state.shuffle_bytes,
        wire_bytes: sim.state.wire_bytes,
        mapper_spans: sim.state.mapper_spans.clone(),
        cpu_multiplier: sim.state.cpu_multiplier,
    }
}

/// MPI's failure-detection latency in the cost model: the time between a
/// process dying and MPICH aborting the job (or, in checkpoint mode, the
/// driver noticing and starting the respawn).
const MPI_DETECT: SimTime = SimTime::from_millis(80);

/// How the simulated MPI-D deployment reacts to node crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpidFtMode {
    /// The paper's prototype: no fault tolerance at all. The first node
    /// crash aborts the whole job after the detection latency.
    Unchecked,
    /// Barrier checkpoint/restart: the job runs as supersteps of
    /// `interval_splits` splits; at each barrier the reducers flush their
    /// partition-buffer delta to local disk, and a superstep interrupted by
    /// a crash is replayed from the last barrier on the surviving hosts.
    Checkpoint {
        /// Input splits per superstep (clamped to at least 1).
        interval_splits: usize,
    },
}

/// How a fault-injected MPI-D job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtOutcome {
    /// The job finished.
    Completed {
        /// Wall-clock job time including recovery.
        makespan: SimTime,
    },
    /// The job was lost — unchecked MPI under a node crash.
    Failed {
        /// When the job aborted (crash + detection latency).
        at: SimTime,
        /// The crashed host.
        lost_host: usize,
    },
}

/// Report of one fault-injected MPI-D simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimMpidFtReport {
    /// Completion or failure.
    pub outcome: FtOutcome,
    /// Supersteps completed (1 for an unchecked run that finished).
    pub supersteps: u64,
    /// Supersteps replayed after a crash.
    pub restarts: u64,
    /// Total barrier time spent writing checkpoints.
    pub checkpoint_overhead: SimTime,
    /// Simulated work thrown away (partial superstep at a crash, or the
    /// whole run for an unchecked failure).
    pub wasted: SimTime,
}

/// Execute one simulated MPI-D job under a fault plan.
///
/// Benign events (disk/NIC degradations, partitions, stragglers) are
/// injected into the fluid simulation itself; node crashes are resolved by
/// the FT `mode` — fail-fast for [`MpidFtMode::Unchecked`], replay from the
/// last barrier for [`MpidFtMode::Checkpoint`]. With an empty plan,
/// unchecked mode is bit-identical to [`run_sim_mpid`].
pub fn run_sim_mpid_ft(
    cfg: SimMpidConfig,
    spec: JobSpec,
    plan: FaultPlan,
    mode: MpidFtMode,
) -> SimMpidFtReport {
    run_sim_mpid_ft_inner(cfg, spec, plan, mode, None)
}

/// [`run_sim_mpid_ft`] with the fault schedule, barrier checkpoints and
/// restarts recorded as `mpid.checkpoint` / `faults.inject` trace events.
pub fn run_sim_mpid_ft_traced(
    cfg: SimMpidConfig,
    spec: JobSpec,
    plan: FaultPlan,
    mode: MpidFtMode,
    tracer: Tracer,
) -> SimMpidFtReport {
    plan.emit_schedule(&tracer);
    run_sim_mpid_ft_inner(cfg, spec, plan, mode, Some(tracer))
}

fn run_sim_mpid_ft_inner(
    cfg: SimMpidConfig,
    spec: JobSpec,
    plan: FaultPlan,
    mode: MpidFtMode,
    tracer: Option<Tracer>,
) -> SimMpidFtReport {
    plan.validate(cfg.cluster.hosts)
        .expect("invalid fault plan");
    let interval = match mode {
        MpidFtMode::Unchecked => {
            // One monolithic "superstep": run the whole job with the benign
            // events injected, then let the first crash (if it lands before
            // completion) kill it.
            let report = run_sim_mpid_inner(cfg, spec, plan.without_crashes(), tracer.clone());
            return match plan.first_crash() {
                Some((at, host)) if at < report.makespan => {
                    let failed_at = at + MPI_DETECT;
                    if let Some(t) = &tracer {
                        t.instant(
                            0,
                            0,
                            obs::names::INST_JOB_FAILED,
                            obs::names::CAT_MPID_CHECKPOINT,
                            failed_at.as_nanos(),
                        );
                    }
                    SimMpidFtReport {
                        outcome: FtOutcome::Failed {
                            at: failed_at,
                            lost_host: host,
                        },
                        supersteps: 0,
                        restarts: 0,
                        checkpoint_overhead: SimTime::ZERO,
                        wasted: at,
                    }
                }
                _ => SimMpidFtReport {
                    outcome: FtOutcome::Completed {
                        makespan: report.makespan,
                    },
                    supersteps: 1,
                    restarts: 0,
                    checkpoint_overhead: SimTime::ZERO,
                    wasted: SimTime::ZERO,
                },
            };
        }
        MpidFtMode::Checkpoint { interval_splits } => interval_splits.max(1) as u64,
    };

    let n_splits = spec.input_bytes.div_ceil(cfg.split_bytes).max(1);
    let mut crash_pending = plan.first_crash();
    let mut hosts = cfg.cluster.hosts;
    let mut elapsed = SimTime::ZERO;
    let mut report = SimMpidFtReport {
        outcome: FtOutcome::Completed {
            makespan: SimTime::ZERO,
        },
        supersteps: 0,
        restarts: 0,
        checkpoint_overhead: SimTime::ZERO,
        wasted: SimTime::ZERO,
    };
    let mut split = 0u64;
    while split < n_splits {
        let chunk = interval.min(n_splits - split);
        let chunk_bytes = (spec.input_bytes - split * cfg.split_bytes).min(chunk * cfg.split_bytes);
        let mut sub_cfg = cfg.clone();
        sub_cfg.cluster.hosts = hosts;
        let mut sub_spec = spec.clone();
        sub_spec.input_bytes = chunk_bytes;
        // The superstep inherits whatever benign faults are active at its
        // start plus those scheduled during it, re-based to local time.
        let sub = run_sim_mpid_inner(
            sub_cfg,
            sub_spec,
            plan.after(elapsed).without_crashes(),
            None,
        );
        // Barrier: reducers flush this superstep's partition-buffer delta
        // to local disk in parallel, plus one barrier RPC.
        let per_red = spec.shuffle_bytes(chunk_bytes) / cfg.n_reducers as u64;
        let ckpt = SimTime::from_secs_f64(per_red as f64 / cfg.cluster.disk_write_bytes_per_sec)
            + cfg.master_rpc;
        let end = elapsed + sub.makespan + ckpt;
        if let Some((at, _host)) = crash_pending {
            if at < end {
                // The crash lands in this superstep: its partial work is
                // lost, the host is gone, and after detection + respawn the
                // superstep replays from the last barrier on the survivors.
                report.wasted += at.max(elapsed) - elapsed;
                report.restarts += 1;
                hosts -= 1;
                elapsed = at + MPI_DETECT + cfg.startup;
                crash_pending = None;
                if let Some(t) = &tracer {
                    t.instant(
                        0,
                        0,
                        obs::names::INST_RESTART,
                        obs::names::CAT_MPID_CHECKPOINT,
                        elapsed.as_nanos(),
                    );
                }
                continue;
            }
        }
        elapsed = end;
        report.checkpoint_overhead += ckpt;
        report.supersteps += 1;
        split += chunk;
        if let Some(t) = &tracer {
            t.instant(
                0,
                0,
                obs::names::INST_CHECKPOINT,
                obs::names::CAT_MPID_CHECKPOINT,
                elapsed.as_nanos(),
            );
        }
    }
    report.outcome = FtOutcome::Completed { makespan: elapsed };
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wc_spec(gb: f64) -> JobSpec {
        JobSpec {
            name: "wordcount".into(),
            input_bytes: (gb * (1u64 << 30) as f64) as u64,
            record_bytes: 80,
            map_cpu_ns_per_byte: 800.0,
            map_output_ratio: 1.6,
            combine_ratio: 0.012,
            combine_cpu_ns_per_byte: 30.0,
            reduce_cpu_ns_per_byte: 100.0,
            output_ratio: 1.0,
            shuffle: SimShuffle::Baseline,
        }
    }

    #[test]
    fn completes_and_scales_with_input() {
        let t1 = run_sim_mpid(SimMpidConfig::icpp2011_fig6(), wc_spec(1.0)).makespan;
        let t10 = run_sim_mpid(SimMpidConfig::icpp2011_fig6(), wc_spec(10.0)).makespan;
        assert!(t10 > t1 * 5, "10x data should be >5x time: {t1} vs {t10}");
    }

    #[test]
    fn superlinear_pressure_term() {
        // 100× the data must take more than 100× the time (the paper's
        // observed shape).
        let cfg = |gb: f64| {
            SimMpidConfig::icpp2011_fig6().with_auto_splits((gb * (1u64 << 30) as f64) as u64)
        };
        let t1 = run_sim_mpid(cfg(1.0), wc_spec(1.0)).makespan;
        let t100 = run_sim_mpid(cfg(100.0), wc_spec(100.0)).makespan;
        let ratio = t100.as_secs_f64() / t1.as_secs_f64();
        assert!(ratio > 100.0, "expected superlinear growth, got {ratio}");
    }

    #[test]
    fn overlap_mode_is_not_slower() {
        let mut cfg = SimMpidConfig::icpp2011_fig6();
        let base = run_sim_mpid(cfg.clone(), wc_spec(2.0)).makespan;
        cfg.overlap_sends = true;
        let overlapped = run_sim_mpid(cfg, wc_spec(2.0)).makespan;
        assert!(overlapped <= base + SimTime::from_secs(1));
    }

    #[test]
    fn deterministic() {
        let a = run_sim_mpid(SimMpidConfig::icpp2011_fig6(), wc_spec(1.0));
        let b = run_sim_mpid(SimMpidConfig::icpp2011_fig6(), wc_spec(1.0));
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn mapper_spans_cover_the_job() {
        let r = run_sim_mpid(SimMpidConfig::icpp2011_fig6(), wc_spec(1.0));
        assert!(r.map_finish <= r.makespan);
        assert!(r.mapper_spans.iter().all(|&(s, e)| e >= s));
        assert!(r.shuffle_bytes > 0);
        let tl = r.phase_timeline();
        assert_eq!(tl.len(), 3);
        assert_eq!(tl[2].0, "reduce_tail");
        assert_eq!(tl[2].2, r.makespan);
    }

    #[test]
    fn ft_unchecked_with_empty_plan_matches_plain_run() {
        let plain = run_sim_mpid(SimMpidConfig::icpp2011_fig6(), wc_spec(1.0));
        let ft = run_sim_mpid_ft(
            SimMpidConfig::icpp2011_fig6(),
            wc_spec(1.0),
            FaultPlan::none(),
            MpidFtMode::Unchecked,
        );
        assert_eq!(
            ft.outcome,
            FtOutcome::Completed {
                makespan: plain.makespan
            }
        );
        assert_eq!(ft.checkpoint_overhead, SimTime::ZERO);
    }

    #[test]
    fn ft_unchecked_fails_fast_on_a_crash() {
        let plain = run_sim_mpid(SimMpidConfig::icpp2011_fig6(), wc_spec(1.0));
        let crash_at = SimTime::from_secs_f64(plain.makespan.as_secs_f64() * 0.5);
        let plan = FaultPlan::builder().crash(crash_at, 3).build();
        let ft = run_sim_mpid_ft(
            SimMpidConfig::icpp2011_fig6(),
            wc_spec(1.0),
            plan,
            MpidFtMode::Unchecked,
        );
        match ft.outcome {
            FtOutcome::Failed { at, lost_host } => {
                assert_eq!(lost_host, 3);
                assert!(at >= crash_at && at < crash_at + SimTime::from_secs(1));
            }
            other => panic!("expected fail-fast, got {other:?}"),
        }
    }

    #[test]
    fn ft_checkpoint_survives_the_crash_with_bounded_slowdown() {
        let cfg = SimMpidConfig::icpp2011_fig6().with_auto_splits(1 << 30);
        let plain = run_sim_mpid(cfg.clone(), wc_spec(1.0));
        let crash_at = SimTime::from_secs_f64(plain.makespan.as_secs_f64() * 0.5);
        let plan = FaultPlan::builder().crash(crash_at, 3).build();
        let mode = MpidFtMode::Checkpoint { interval_splits: 4 };
        let ft = run_sim_mpid_ft(cfg.clone(), wc_spec(1.0), plan.clone(), mode);
        let FtOutcome::Completed { makespan } = ft.outcome else {
            panic!("checkpointed run must complete: {:?}", ft.outcome);
        };
        assert_eq!(ft.restarts, 1);
        assert!(ft.checkpoint_overhead > SimTime::ZERO);
        // Recovery costs something, but far less than a full re-run.
        assert!(makespan > plain.makespan);
        assert!(
            makespan.as_secs_f64() < plain.makespan.as_secs_f64() * 3.0 + 60.0,
            "recovery should be bounded: {makespan} vs {}",
            plain.makespan
        );
        // Deterministic replay.
        let again = run_sim_mpid_ft(cfg, wc_spec(1.0), plan, mode);
        assert_eq!(ft, again);
    }

    #[test]
    fn ft_straggler_slows_the_whole_job_without_crashing_it() {
        let plain = run_sim_mpid(SimMpidConfig::icpp2011_fig6(), wc_spec(1.0));
        let until = SimTime::from_secs_f64(plain.makespan.as_secs_f64() * 4.0);
        let plan = FaultPlan::builder()
            .straggler(SimTime::ZERO, 2, 6.0, until)
            .build();
        let ft = run_sim_mpid_ft(
            SimMpidConfig::icpp2011_fig6(),
            wc_spec(1.0),
            plan,
            MpidFtMode::Unchecked,
        );
        let FtOutcome::Completed { makespan } = ft.outcome else {
            panic!("stragglers must not fail the job");
        };
        // No speculation in MPI-D: the slow host drags the makespan.
        assert!(makespan > plain.makespan);
    }

    #[test]
    fn traced_run_emits_pipeline_spans_without_perturbing_the_sim() {
        let plain = run_sim_mpid(SimMpidConfig::icpp2011_fig6(), wc_spec(1.0));
        let tracer = Tracer::new();
        let traced =
            run_sim_mpid_traced(SimMpidConfig::icpp2011_fig6(), wc_spec(1.0), tracer.clone());
        assert_eq!(plain.makespan, traced.makespan);
        let trace = tracer.take_trace();
        let count = |name: &str| {
            trace
                .events()
                .iter()
                .filter(|e| e.name == name && e.cat == "mpid.phase")
                .count()
        };
        // 1 GB over 49 mappers with 64 MB splits = 16 splits, each traced
        // through read → map → ship.
        assert_eq!(count("read"), 16);
        assert_eq!(count("map"), 16);
        assert_eq!(count("ship"), 16);
        assert_eq!(count("reduce_tail"), 1);
        assert!(trace.events().iter().any(|e| e.name == "mpid.mappers_done"));
        assert_eq!(tracer.metrics().counter("mpid.mappers_done"), 49);
    }

    #[test]
    fn shuffle_strategies_trade_wire_for_map_work() {
        let base = run_sim_mpid(SimMpidConfig::icpp2011_fig6(), wc_spec(1.0));
        assert!(base.wire_bytes > 0);

        // In-node combining: 49 mappers on 7 workers = 7 co-located spill
        // sets merged per host; WordCount combines well, so wire collapses.
        let mut cfg = SimMpidConfig::icpp2011_fig6();
        cfg.shuffle = SimShuffle::InNodeCombine;
        let innode = run_sim_mpid(cfg, wc_spec(1.0));
        assert!(
            innode.wire_bytes < base.wire_bytes / 2,
            "in-node combine should collapse duplicate keys: {} vs {}",
            innode.wire_bytes,
            base.wire_bytes
        );
        assert!(innode.shuffle_bytes < base.shuffle_bytes);

        // Coded r=2: roughly half the wire, same reducer-input volume, and
        // the replicated map work shows up in the mapper spans.
        let mut cfg = SimMpidConfig::icpp2011_fig6();
        cfg.shuffle = SimShuffle::Coded { r: 2 };
        let coded = run_sim_mpid(cfg, wc_spec(1.0));
        let ratio = coded.wire_bytes as f64 / base.wire_bytes as f64;
        assert!(
            (0.45..=0.55).contains(&ratio),
            "coded r=2 should halve wire bytes, got ratio {ratio}"
        );
        assert_eq!(coded.shuffle_bytes, base.shuffle_bytes);
        assert!(coded.map_finish > base.map_finish);

        // The per-job knob works too, and the deployment knob wins.
        let mut spec = wc_spec(1.0);
        spec.shuffle = SimShuffle::Coded { r: 2 };
        let per_job = run_sim_mpid(SimMpidConfig::icpp2011_fig6(), spec.clone());
        assert_eq!(per_job.wire_bytes, coded.wire_bytes);
        let mut cfg = SimMpidConfig::icpp2011_fig6();
        cfg.shuffle = SimShuffle::InNodeCombine;
        let overridden = run_sim_mpid(cfg, spec);
        assert_eq!(overridden.wire_bytes, innode.wire_bytes);
    }

    #[test]
    fn rack_topology_slows_cross_rack_shuffle() {
        let flat = run_sim_mpid(SimMpidConfig::icpp2011_fig6(), wc_spec(1.0));
        let mut cfg = SimMpidConfig::icpp2011_fig6();
        cfg.rack = Some(RackLayout::oversubscribed(
            4,
            cfg.cluster.nic_bytes_per_sec,
            8.0,
        ));
        let racked = run_sim_mpid(cfg, wc_spec(1.0));
        // Same data moved; the oversubscribed core can only cost time.
        assert_eq!(racked.wire_bytes, flat.wire_bytes);
        assert!(racked.makespan >= flat.makespan);
    }

    #[test]
    fn worker_threads_shorten_the_makespan_monotonically() {
        let run = |t: usize| {
            let mut cfg = SimMpidConfig::icpp2011_fig6();
            cfg.threads = t;
            run_sim_mpid(cfg, wc_spec(1.0))
        };
        let t1 = run(1);
        let t2 = run(2);
        let t4 = run(4);
        // Dividing the combiner and sort-merge shares across workers can
        // only shave time off; the serial map floor keeps it sublinear.
        assert!(t2.makespan <= t1.makespan);
        assert!(t4.makespan <= t2.makespan);
        assert!(t4.makespan > SimTime::ZERO);
        // threads = 1 is the pre-threading model, bit-for-bit.
        let again = run(1);
        assert_eq!(t1.makespan, again.makespan);
    }
}
