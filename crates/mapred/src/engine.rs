//! Real distributed execution over MPI-D: rank 0 master, mapper ranks,
//! reducer ranks — the paper's simulation-system process layout, running
//! actual bytes through `mpid` and `mpi-rt`.

use crate::api::{InputFormat, MapReduceApp};
use mpi_rt::{MpiConfig, Universe};
use mpid::combine::FnCombiner;
use mpid::partition::Partitioner;
use mpid::{MpidConfig, MpidWorld, Role};
use std::sync::Arc;
use std::time::Duration;

/// Engine configuration: process layout plus MPI-D pipeline knobs.
#[derive(Debug, Clone)]
pub struct MpidEngineConfig {
    /// Mapper ranks.
    pub n_mappers: usize,
    /// Reducer ranks.
    pub n_reducers: usize,
    /// Mapper-side spill threshold, bytes.
    pub spill_threshold_bytes: usize,
    /// Realigned frame target size, bytes.
    pub frame_bytes: usize,
    /// Use `MPI_Isend` for spilled frames (computation/communication
    /// overlap).
    pub use_isend: bool,
    /// LZ-compress realigned frames on the wire.
    pub compress: bool,
    /// Eager/rendezvous switch-over in the MPI runtime.
    pub eager_threshold: usize,
    /// Bound on how long a reducer waits for the next frame.
    pub recv_timeout: Duration,
    /// When set, reducers group through the bounded-memory external merge
    /// ([`mpid::MpidReceiver::into_external`]) with this in-memory byte
    /// budget instead of holding the whole key space resident.
    pub reduce_budget_bytes: Option<usize>,
    /// Worker threads per mapper/reducer rank (Mimir's `tnum`). `1` runs
    /// the hot path inline; `>1` shards the sender table and parallelizes
    /// the receiver merge. Output is bit-identical at any setting.
    pub threads: usize,
    /// Job-wide byte budget for MPI-D buffering. One [`mpid::BlockPool`]
    /// is shared across every rank of the job; sender tables, receiver
    /// frame windows, and external-merge resident sets charge it, and the
    /// pool's high-water mark is reported in [`JobOutput::pool_stats`].
    pub mem_budget: Option<usize>,
    /// Run the universe under the mpiverify correctness checker (deadlock
    /// watchdog, collective signature checks, teardown leak audit). On by
    /// default; observation-only, so results are identical either way.
    pub verify: bool,
    /// How spilled frames travel to the reducers (see [`mpid::shuffle`]):
    /// direct ship, per-host in-node combining, or coded-multicast
    /// validation. Grouped output is identical for every setting.
    pub shuffle: mpid::ShuffleKind,
}

impl Default for MpidEngineConfig {
    fn default() -> Self {
        MpidEngineConfig {
            n_mappers: 2,
            n_reducers: 1,
            spill_threshold_bytes: 4 * 1024 * 1024,
            frame_bytes: 512 * 1024,
            use_isend: false,
            compress: false,
            eager_threshold: 64 * 1024,
            recv_timeout: MpidConfig::DEFAULT_RECV_TIMEOUT,
            reduce_budget_bytes: None,
            threads: 1,
            mem_budget: None,
            verify: true,
            shuffle: mpid::ShuffleKind::Baseline,
        }
    }
}

impl MpidEngineConfig {
    /// `m` mappers, `r` reducers, defaults elsewhere.
    pub fn with_workers(m: usize, r: usize) -> Self {
        MpidEngineConfig {
            n_mappers: m,
            n_reducers: r,
            ..Default::default()
        }
    }

    pub(crate) fn mpid(&self) -> MpidConfig {
        MpidConfig {
            n_mappers: self.n_mappers,
            n_reducers: self.n_reducers,
            spill_threshold_bytes: self.spill_threshold_bytes,
            frame_bytes: self.frame_bytes,
            sort_keys: false,
            sort_values: false,
            use_isend: self.use_isend,
            compress: self.compress,
            threads: self.threads,
            mem_budget: self.mem_budget,
            pool: None,
            shuffle: self.shuffle,
        }
    }
}

/// Result of a distributed job.
#[derive(Debug, Clone)]
pub struct JobOutput<K, V> {
    /// Output pairs, merged across reducers, ascending by intermediate key
    /// within each reducer.
    pub output: Vec<(K, V)>,
    /// Mapper statistics summed over all mappers.
    pub sender_stats: mpid::SenderStats,
    /// Splits assigned by the master.
    pub master_stats: mpid::MasterStats,
    /// Total messages the MPI universe carried.
    pub universe_msgs: u64,
    /// Total payload bytes the MPI universe carried.
    pub universe_bytes: u64,
    /// Final snapshot of the job-wide block pool, when
    /// [`MpidEngineConfig::mem_budget`] was set: the `high_water` field is
    /// what the memory CI gate asserts against the budget.
    pub pool_stats: Option<mpid::PoolStats>,
}

enum RankResult<K, V> {
    Master(mpid::MasterStats, mpid::SenderStats),
    Mapper,
    Reducer(Vec<(K, V)>),
}

/// Adapter exposing the application's `partition` method as an MPI-D
/// [`Partitioner`].
pub(crate) struct AppPartitioner<A>(pub(crate) Arc<A>);

impl<A: MapReduceApp> Partitioner<A::MidKey> for AppPartitioner<A> {
    fn partition(&self, key: &A::MidKey, n_reducers: usize) -> usize {
        self.0.partition(key, n_reducers)
    }
}

/// Run `app` over `input` on a fresh MPI universe (1 master +
/// `n_mappers` + `n_reducers` ranks as threads).
pub fn run_mpid<A, I>(
    cfg: &MpidEngineConfig,
    app: Arc<A>,
    input: Arc<I>,
) -> JobOutput<A::OutKey, A::OutVal>
where
    A: MapReduceApp,
    I: InputFormat<Key = A::InKey, Val = A::InVal>,
{
    run_mpid_inner(cfg, app, input, None)
}

/// Like [`run_mpid`], but with wall-clock tracing: every rank records its
/// MPI operations and MPI-D pipeline stages (`mpid.stage` spans plus
/// `mpid.mem.*` memory counters) into `sink`. Timestamps are real
/// nanoseconds — unlike the simulators they vary run to run, but the
/// counter *values* and span structure are deterministic for a fixed
/// config and input.
pub fn run_mpid_traced<A, I>(
    cfg: &MpidEngineConfig,
    app: Arc<A>,
    input: Arc<I>,
    sink: obs::SharedTrace,
) -> JobOutput<A::OutKey, A::OutVal>
where
    A: MapReduceApp,
    I: InputFormat<Key = A::InKey, Val = A::InVal>,
{
    run_mpid_inner(cfg, app, input, Some(sink))
}

fn run_mpid_inner<A, I>(
    cfg: &MpidEngineConfig,
    app: Arc<A>,
    input: Arc<I>,
    sink: Option<obs::SharedTrace>,
) -> JobOutput<A::OutKey, A::OutVal>
where
    A: MapReduceApp,
    I: InputFormat<Key = A::InKey, Val = A::InVal>,
{
    let mut mpid_cfg = cfg.mpid();
    // One pool Arc created up front and cloned into every rank closure, so
    // the budget bounds the *job's* aggregate buffering (per-rank pools
    // would each get the full budget).
    let pool = cfg.mem_budget.map(mpid::BlockPool::new);
    mpid_cfg.pool = pool.clone();
    let n_ranks = mpid_cfg.required_ranks();
    let timeout = cfg.recv_timeout;
    let reduce_budget = cfg.reduce_budget_bytes;
    let splits: Vec<u64> = (0..input.n_splits() as u64).collect();
    let mut universe_msgs = 0;
    let mut universe_bytes = 0;

    let mpi_cfg = MpiConfig {
        eager_threshold: cfg.eager_threshold,
        verify: if cfg.verify {
            mpi_rt::VerifyConfig::default()
        } else {
            mpi_rt::VerifyConfig::disabled()
        },
        ..MpiConfig::default()
    };
    let rank_fn = move |comm: &mpi_rt::Comm| {
        let world = MpidWorld::init(comm, mpid_cfg.clone()).expect("valid config");
        let result = match world.role() {
            Role::Master => {
                let stats = world.run_master(splits.clone()).expect("master failed");
                // Gather every mapper's pipeline counters over MPI
                // (exercises the STATS leg of the wire protocol).
                let sender = world.collect_stats().expect("stats gather failed");
                RankResult::Master(stats, sender)
            }
            Role::Mapper(_) => {
                let mut sender = world
                    .sender::<A::MidKey, A::MidVal>()
                    .with_partitioner(AppPartitioner(app.clone()));
                if let Some(c) = app.combine() {
                    sender = sender.with_combiner(FnCombiner(c));
                }
                while let Some(split) = world.next_split::<u64>().expect("split fetch") {
                    for (k, v) in input.records(split as usize) {
                        let mut err = None;
                        app.map(k, v, &mut |mk, mv| {
                            if err.is_none() {
                                if let Err(e) = sender.send(mk, mv) {
                                    err = Some(e);
                                }
                            }
                        });
                        if let Some(e) = err {
                            panic!("MPI_D_Send failed: {e}");
                        }
                    }
                }
                let stats = sender.finish().expect("finish failed");
                world.report_stats(&stats).expect("stats report failed");
                RankResult::Mapper
            }
            Role::Reducer(_) => {
                let recv = world
                    .receiver::<A::MidKey, A::MidVal>()
                    .with_timeout(timeout);
                let mut out = Vec::new();
                if let Some(budget) = reduce_budget {
                    let mut ext = recv
                        .into_external(budget, std::env::temp_dir())
                        .expect("external ingest failed");
                    while let Some((k, vs)) = ext.recv().expect("MPI_D_Recv failed") {
                        app.reduce(k, vs, &mut |ok, ov| out.push((ok, ov)));
                    }
                } else {
                    let mut recv = recv;
                    while let Some((k, vs)) = recv.recv().expect("MPI_D_Recv failed") {
                        app.reduce(k, vs, &mut |ok, ov| out.push((ok, ov)));
                    }
                }
                RankResult::Reducer(out)
            }
        };
        let stats = (comm.universe_msgs_sent(), comm.universe_bytes_sent());
        world.finalize().expect("finalize failed");
        (result, stats)
    };
    let results = match sink {
        Some(s) => Universe::run_traced(mpi_cfg, n_ranks, s, rank_fn),
        None => Universe::run_with(mpi_cfg, n_ranks, rank_fn),
    };

    let mut output = Vec::new();
    let mut sender_stats = mpid::SenderStats::default();
    let mut master_stats = mpid::MasterStats::default();
    for (r, (msgs, bytes)) in results {
        universe_msgs = universe_msgs.max(msgs);
        universe_bytes = universe_bytes.max(bytes);
        match r {
            RankResult::Master(m, s) => {
                master_stats = m;
                sender_stats = s;
            }
            RankResult::Mapper => {}
            RankResult::Reducer(o) => output.extend(o),
        }
    }
    JobOutput {
        output,
        sender_stats,
        master_stats,
        universe_msgs,
        universe_bytes,
        pool_stats: pool.map(|p| p.stats()),
    }
}
