//! Multi-job entry point: distil a [`SimMpidConfig`] + [`JobSpec`] into the
//! coarse [`netsim::JobPlan`] the serving master executes on a shared
//! cluster.
//!
//! Mirrors `hadoop_sim::serve_plan` for the MPI-D stack: process startup
//! and serialized master split-assignment RPCs as setup, then a single
//! map+ship phase — the paper's core design point is that `MPI_D_Send`
//! pipelines spill shipment *during* map computation, so the shuffle's
//! all-to-all traffic runs concurrently with the map CPU instead of as a
//! separate copy phase — and a reduce tail that drains the last frames and
//! writes unreplicated output.

use crate::sim::SimMpidConfig;
use desim::SimTime;
use netsim::{JobPhase, JobPlan, JobSpec, PhaseFlows, SimShuffle};

/// The serving-master plan for running `spec` on `n_hosts` granted worker
/// hosts under this configuration. Phase labels are `obs::names` constants.
pub fn serve_plan(cfg: &SimMpidConfig, spec: &JobSpec, n_hosts: usize) -> JobPlan {
    assert!(n_hosts > 0, "a job needs at least one host");
    let n = n_hosts as f64;
    // Data is pre-distributed evenly over the granted hosts in chunks of at
    // most one block, as `with_auto_splits` sizes the single-job runs.
    let split = (spec.input_bytes.div_ceil(n_hosts as u64)).clamp(1 << 20, 64 << 20);
    let n_splits = spec.input_bytes.div_ceil(split).max(1);

    // Memory-hierarchy pressure of the prototype's in-process state grows
    // with per-mapper volume, exactly as in the single-job simulator.
    let per_host = spec.input_bytes.div_ceil(n_hosts as u64).max(1);
    let pressure = if per_host > cfg.pressure_ref_bytes {
        1.0 + cfg.pressure_per_doubling * (per_host as f64 / cfg.pressure_ref_bytes as f64).log2()
    } else {
        1.0
    };

    // Per-job shuffle strategy (deployment knob wins). Co-location for the
    // in-node combine stage is the run of consecutive splits a host maps —
    // their spills merge through one per-host combine before framing.
    let strat = SimShuffle::resolve(cfg.shuffle, spec.shuffle);
    let colocated = n_splits.div_ceil(n_hosts as u64) as usize;
    let data = strat.data_factor(colocated, spec.combine_ratio);
    let shuffle = (((spec.shuffle_bytes(spec.input_bytes) as f64) * data).round() as u64).max(1);
    let wire = (((shuffle as f64) * strat.code_factor()).round() as u64).max(1);
    let innode_cpu = if strat == SimShuffle::InNodeCombine {
        spec.shuffle_bytes(spec.input_bytes) as f64
            * spec.combine_cpu_ns_per_byte
            * 1e-9
            * cfg.native_cpu_factor
            / n
    } else {
        0.0
    };
    let output = spec.output_bytes(shuffle).max(1);
    JobPlan {
        setup_secs: cfg.startup.as_secs_f64() + n_splits as f64 * cfg.master_rpc.as_secs_f64(),
        phases: vec![
            JobPhase {
                label: obs::names::SPAN_MAP,
                cpu_secs: spec.map_cpu_secs(spec.input_bytes)
                    * strat.map_work_factor()
                    * cfg.native_cpu_factor
                    * pressure
                    / n
                    + innode_cpu,
                bytes: wire,
                flows: PhaseFlows::ShuffleAllToAll,
            },
            JobPhase {
                label: obs::names::SPAN_REDUCE_TAIL,
                cpu_secs: spec.reduce_cpu_secs(shuffle) * cfg.native_cpu_factor / n,
                bytes: output,
                flows: PhaseFlows::WriteReplicated { copies: 1 },
            },
        ],
    }
}

/// Failure-detection latency of the serving master for this stack: a dead
/// rank drops its sockets and mpiexec tears the job down within a connection
/// timeout — milliseconds, not Hadoop's missed-heartbeat seconds. The flip
/// side (the paper's concession) is that detection kills the *whole job*.
pub fn detect_delay(_cfg: &SimMpidConfig) -> SimTime {
    SimTime::from_millis(100)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wc_like(input_bytes: u64) -> JobSpec {
        JobSpec {
            name: "wordcount".into(),
            input_bytes,
            record_bytes: 80,
            map_cpu_ns_per_byte: 620.0,
            map_output_ratio: 1.8,
            combine_ratio: 0.1,
            combine_cpu_ns_per_byte: 30.0,
            reduce_cpu_ns_per_byte: 100.0,
            output_ratio: 1.0,
            shuffle: SimShuffle::Baseline,
        }
    }

    #[test]
    fn plan_overlaps_shuffle_with_map() {
        let cfg = SimMpidConfig::icpp2011_fig6();
        let spec = wc_like(1 << 30);
        let plan = serve_plan(&cfg, &spec, 8);
        plan.validate();
        assert_eq!(plan.phases.len(), 2);
        // The shuffle volume rides the map phase, not a separate copy.
        assert_eq!(plan.phases[0].flows, PhaseFlows::ShuffleAllToAll);
        assert_eq!(plan.phases[0].bytes, spec.shuffle_bytes(1 << 30));
        assert_eq!(
            plan.phases[1].flows,
            PhaseFlows::WriteReplicated { copies: 1 }
        );
        // Both stacks agree on the job's logical output volume.
        let hcfg = hadoop_sim_equivalent_output(&spec);
        assert_eq!(plan.output_bytes(), hcfg);
    }

    fn hadoop_sim_equivalent_output(spec: &JobSpec) -> u64 {
        spec.output_bytes(spec.shuffle_bytes(spec.input_bytes).max(1))
            .max(1)
    }

    #[test]
    fn strategies_trade_wire_for_map_work() {
        let cfg = SimMpidConfig::icpp2011_fig6();
        let base = serve_plan(&cfg, &wc_like(1 << 30), 8);

        let mut spec = wc_like(1 << 30);
        spec.shuffle = SimShuffle::InNodeCombine;
        let innode = serve_plan(&cfg, &spec, 8);
        assert!(innode.phases[0].bytes < base.phases[0].bytes);

        let mut spec = wc_like(1 << 30);
        spec.shuffle = SimShuffle::Coded { r: 2 };
        let coded = serve_plan(&cfg, &spec, 8);
        let half = base.phases[0].bytes / 2;
        assert!(coded.phases[0].bytes.abs_diff(half) <= 1);
        assert!(coded.phases[0].cpu_secs > base.phases[0].cpu_secs);

        // A deployment-level knob overrides the per-job baseline.
        let mut cfg2 = SimMpidConfig::icpp2011_fig6();
        cfg2.shuffle = SimShuffle::Coded { r: 2 };
        let forced = serve_plan(&cfg2, &wc_like(1 << 30), 8);
        assert_eq!(forced.phases[0].bytes, coded.phases[0].bytes);
    }

    #[test]
    fn native_stack_has_smaller_setup_and_cpu() {
        let cfg = SimMpidConfig::icpp2011_fig6();
        let spec = wc_like(1 << 30);
        let plan = serve_plan(&cfg, &spec, 8);
        // Setup is sub-second (startup + RPCs), vs Hadoop's 6 s job setup.
        assert!(plan.setup_secs < 1.0, "setup {}", plan.setup_secs);
        // Native map CPU is well below the Java cost.
        assert!(plan.phases[0].cpu_secs < spec.map_cpu_secs(1 << 30) / 8.0);
    }
}
