//! Reference engine: sequential, single-process execution. The oracle the
//! distributed engines are tested against.

use crate::api::{InputFormat, MapReduceApp};
use std::collections::BTreeMap;

/// Run `app` over `input` sequentially. Output pairs appear in ascending
/// intermediate-key order (matching the distributed engines' merged order).
pub fn run_local<A, I>(app: &A, input: &I) -> Vec<(A::OutKey, A::OutVal)>
where
    A: MapReduceApp,
    I: InputFormat<Key = A::InKey, Val = A::InVal>,
{
    let combine = app.combine();
    let mut groups: BTreeMap<A::MidKey, Vec<A::MidVal>> = BTreeMap::new();
    for split in 0..input.n_splits() {
        for (k, v) in input.records(split) {
            app.map(k, v, &mut |mk, mv| match (groups.get_mut(&mk), combine) {
                (Some(vs), Some(c)) => {
                    let acc = vs.last_mut().expect("non-empty group");
                    c(acc, mv);
                }
                (Some(vs), None) => vs.push(mv),
                (None, _) => {
                    groups.insert(mk, vec![mv]);
                }
            });
        }
    }
    let mut out = Vec::new();
    for (k, vs) in groups {
        app.reduce(k, vs, &mut |ok, ov| out.push((ok, ov)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{TextInput, VecInput};

    struct WordCount;
    impl MapReduceApp for WordCount {
        type InKey = u64;
        type InVal = String;
        type MidKey = String;
        type MidVal = u64;
        type OutKey = String;
        type OutVal = u64;
        fn map(&self, _k: u64, line: String, emit: &mut dyn FnMut(String, u64)) {
            for w in line.split_whitespace() {
                emit(w.to_string(), 1);
            }
        }
        fn reduce(&self, k: String, vs: Vec<u64>, emit: &mut dyn FnMut(String, u64)) {
            emit(k, vs.iter().sum());
        }
        fn combine(&self) -> Option<fn(&mut u64, u64)> {
            Some(|acc, v| *acc += v)
        }
    }

    #[test]
    fn wordcount_local() {
        let input = TextInput::new(vec!["a b a\nb c".into(), "c c a".into()]);
        let out = run_local(&WordCount, &input);
        assert_eq!(
            out,
            vec![
                ("a".to_string(), 3),
                ("b".to_string(), 2),
                ("c".to_string(), 3)
            ]
        );
    }

    struct IdentitySort;
    impl MapReduceApp for IdentitySort {
        type InKey = u64;
        type InVal = Vec<u8>;
        type MidKey = u64;
        type MidVal = Vec<u8>;
        type OutKey = u64;
        type OutVal = Vec<u8>;
        fn map(&self, k: u64, v: Vec<u8>, emit: &mut dyn FnMut(u64, Vec<u8>)) {
            emit(k, v);
        }
        fn reduce(&self, k: u64, mut vs: Vec<Vec<u8>>, emit: &mut dyn FnMut(u64, Vec<u8>)) {
            for v in vs.drain(..) {
                emit(k, v);
            }
        }
    }

    #[test]
    fn sort_outputs_keys_in_order() {
        let records: Vec<(u64, Vec<u8>)> = [5u64, 1, 9, 3]
            .iter()
            .map(|&k| (k, vec![k as u8]))
            .collect();
        let input = VecInput::round_robin(records, 2);
        let out = run_local(&IdentitySort, &input);
        let keys: Vec<u64> = out.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 3, 5, 9]);
    }

    #[test]
    fn combiner_and_no_combiner_agree() {
        struct NoCombine;
        impl MapReduceApp for NoCombine {
            type InKey = u64;
            type InVal = String;
            type MidKey = String;
            type MidVal = u64;
            type OutKey = String;
            type OutVal = u64;
            fn map(&self, _k: u64, line: String, emit: &mut dyn FnMut(String, u64)) {
                for w in line.split_whitespace() {
                    emit(w.to_string(), 1);
                }
            }
            fn reduce(&self, k: String, vs: Vec<u64>, emit: &mut dyn FnMut(String, u64)) {
                emit(k, vs.iter().sum());
            }
        }
        let input = TextInput::new(vec!["x y x z z z".into()]);
        assert_eq!(run_local(&WordCount, &input), run_local(&NoCombine, &input));
    }
}
