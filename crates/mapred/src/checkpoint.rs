//! Barrier-checkpoint/restart execution of MPI-D jobs — the opt-in fault
//! tolerance the paper's MPI-D prototype lacks.
//!
//! Plain MPI-D ([`crate::engine::run_mpid`]) has Hadoop's programming model
//! but MPI's failure model: lose one rank and the whole job is lost
//! ([`MpiError::RankLost`]). This module recovers Hadoop-style resilience by
//! splitting the job into **supersteps** of `interval_splits` input splits.
//! Each superstep runs on a fresh MPI universe; at the barrier between
//! supersteps every reducer's accumulated partition buffer is snapshotted
//! into an in-memory checkpoint (the stand-in for a reliable store). When a
//! superstep dies to a rank loss, it is simply replayed from the last
//! checkpoint — completed supersteps are never re-run.
//!
//! The final output is the same reduce over the same per-reducer key groups
//! as a crash-free [`run_mpid`](crate::engine::run_mpid) run: partitioning
//! is deterministic, so each key accumulates in the same reducer's
//! checkpoint, ascending key order per reducer is preserved by the
//! `BTreeMap`, and value multisets are identical (tested in
//! `crates/mpirt/tests/faults.rs`).

use crate::api::{InputFormat, MapReduceApp};
use crate::engine::{AppPartitioner, MpidEngineConfig};
use mpi_rt::{MpiConfig, MpiError, RankFault, Universe, VerifyConfig};
use mpid::combine::FnCombiner;
use mpid::{MpidWorld, Role};
use std::collections::BTreeMap;
use std::sync::Arc;

/// What one checkpointed run did (restart accounting).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Supersteps executed successfully (restarted attempts not counted).
    pub supersteps: u64,
    /// Supersteps replayed after a rank loss.
    pub restarts: u64,
    /// Intermediate values sitting in checkpoints at the final barrier.
    pub checkpointed_values: u64,
}

/// The reduced output pairs of a checkpointed run.
type Output<A> = Vec<(<A as MapReduceApp>::OutKey, <A as MapReduceApp>::OutVal)>;

/// One reducer's raw key groups for a superstep (the unit of checkpointing).
type Groups<A> = Vec<(
    <A as MapReduceApp>::MidKey,
    Vec<<A as MapReduceApp>::MidVal>,
)>;

/// One rank's contribution to a superstep.
enum StepResult<K, V> {
    Driver,
    /// The rank bailed out because a peer was lost mid-superstep (its own
    /// operation returned `RankLost`/`PeerGone`). The whole superstep is
    /// doomed and will replay; bailing structurally instead of panicking
    /// keeps the planned recovery path free of stderr backtrace noise.
    Lost,
    /// Reducer index and its raw key groups for this superstep.
    Reducer(usize, Vec<(K, Vec<V>)>),
}

/// True when `e` is the propagation of a lost peer into this rank — either
/// the watchdog's structured verdict or the immediate closed-mailbox error
/// a sender can hit before the watchdog confirms.
fn is_loss_propagation(e: &mpid::MpidError) -> bool {
    matches!(
        e,
        mpid::MpidError::Mpi(MpiError::RankLost(_))
            | mpid::MpidError::Mpi(MpiError::PeerGone { .. })
    )
}

/// Run `app` over `input` with barrier-checkpoint/restart fault tolerance.
///
/// `interval_splits` input splits are processed per superstep (clamped to
/// at least 1). `faults` are injected into the universes *until the first
/// rank loss* — the lost rank is then "restarted" healthy, modeling a
/// process respawn, and the interrupted superstep replays from the last
/// checkpoint. Because rank loss must be *detected* (not hung on), the
/// mpiverify checker is always on here, regardless of `cfg.verify`.
///
/// # Panics
/// Panics if a superstep fails for any reason other than a planned rank
/// loss, or if a rank loss occurs with no fault plan left (impossible under
/// injection-only crashes).
pub fn run_mpid_checkpointed<A, I>(
    cfg: &MpidEngineConfig,
    interval_splits: usize,
    faults: Vec<RankFault>,
    app: Arc<A>,
    input: Arc<I>,
) -> (Output<A>, CheckpointStats)
where
    A: MapReduceApp,
    I: InputFormat<Key = A::InKey, Val = A::InVal>,
{
    let interval = interval_splits.max(1);
    let all_splits: Vec<u64> = (0..input.n_splits() as u64).collect();
    let mut pending_faults = faults;
    let mut stats = CheckpointStats::default();
    // One checkpoint per reducer: key → accumulated values across all
    // completed supersteps.
    let mut checkpoints: Vec<BTreeMap<A::MidKey, Vec<A::MidVal>>> =
        (0..cfg.n_reducers).map(|_| BTreeMap::new()).collect();

    for chunk in all_splits.chunks(interval) {
        loop {
            match run_superstep(cfg, &pending_faults, chunk, &app, &input) {
                Ok(step) => {
                    for (reducer, groups) in step {
                        let ckpt = &mut checkpoints[reducer];
                        for (k, vs) in groups {
                            stats.checkpointed_values += vs.len() as u64;
                            ckpt.entry(k).or_default().extend(vs);
                        }
                    }
                    stats.supersteps += 1;
                    break;
                }
                Err(MpiError::RankLost(report)) => {
                    assert!(
                        !pending_faults.is_empty(),
                        "rank loss without a fault plan: {report}"
                    );
                    // The crashed rank is restarted healthy; replay the
                    // superstep from the checkpoint barrier.
                    pending_faults.clear();
                    stats.restarts += 1;
                }
                Err(e) => panic!("checkpointed superstep failed: {e}"),
            }
        }
    }

    let mut output = Vec::new();
    for ckpt in checkpoints {
        for (k, vs) in ckpt {
            app.reduce(k, vs, &mut |ok, ov| output.push((ok, ov)));
        }
    }
    (output, stats)
}

/// Run one superstep universe over `chunk` splits; reducers return their
/// raw key groups instead of reducing, so the driver can checkpoint them.
fn run_superstep<A, I>(
    cfg: &MpidEngineConfig,
    faults: &[RankFault],
    chunk: &[u64],
    app: &Arc<A>,
    input: &Arc<I>,
) -> Result<Vec<(usize, Groups<A>)>, MpiError>
where
    A: MapReduceApp,
    I: InputFormat<Key = A::InKey, Val = A::InVal>,
{
    let mpid_cfg = cfg.mpid();
    let n_ranks = mpid_cfg.required_ranks();
    let timeout = cfg.recv_timeout;
    let splits = chunk.to_vec();
    let app = app.clone();
    let input = input.clone();

    let results = Universe::try_run_with(
        MpiConfig {
            eager_threshold: cfg.eager_threshold,
            // Failure detection (the watchdog that turns a lost rank into
            // MpiError::RankLost for the survivors) requires the checker.
            verify: VerifyConfig::default(),
            fault_injection: faults.to_vec(),
        },
        n_ranks,
        move |comm| {
            let world = MpidWorld::init(comm, mpid_cfg.clone()).expect("valid config");
            let result = match world.role() {
                Role::Master => match master_step(&world, &splits) {
                    Ok(()) => StepResult::Driver,
                    Err(e) if is_loss_propagation(&e) => StepResult::Lost,
                    Err(e) => panic!("master failed: {e}"),
                },
                Role::Mapper(_) => match mapper_step(&world, &app, &input) {
                    Ok(()) => StepResult::Driver,
                    Err(e) if is_loss_propagation(&e) => StepResult::Lost,
                    Err(e) => panic!("mapper failed: {e}"),
                },
                Role::Reducer(r) => match reducer_step::<A>(&world, timeout) {
                    Ok(groups) => StepResult::Reducer(r, groups),
                    Err(e) if is_loss_propagation(&e) => StepResult::Lost,
                    Err(e) => panic!("MPI_D_Recv failed: {e}"),
                },
            };
            match world.finalize() {
                Ok(()) => result,
                Err(e) if is_loss_propagation(&e) => StepResult::Lost,
                Err(e) => panic!("finalize failed: {e}"),
            }
        },
    )?;

    // A rank may only bail when a peer is lost, and a lost peer always
    // turns the whole universe into Err(RankLost) above — so a Lost marker
    // in an Ok result set means the engine broke an invariant.
    assert!(
        !results.iter().any(|r| matches!(r, StepResult::Lost)),
        "a rank observed a peer loss but the universe completed"
    );
    Ok(results
        .into_iter()
        .filter_map(|r| match r {
            StepResult::Driver | StepResult::Lost => None,
            StepResult::Reducer(i, groups) => Some((i, groups)),
        })
        .collect())
}

/// Master leg of one superstep: distribute `splits`, gather stats.
fn master_step(world: &MpidWorld, splits: &[u64]) -> Result<(), mpid::MpidError> {
    world.run_master(splits.to_vec())?;
    world.collect_stats()?;
    Ok(())
}

/// Mapper leg: pull splits, map, shuffle-send, report stats.
fn mapper_step<A, I>(world: &MpidWorld, app: &Arc<A>, input: &Arc<I>) -> Result<(), mpid::MpidError>
where
    A: MapReduceApp,
    I: InputFormat<Key = A::InKey, Val = A::InVal>,
{
    let mut sender = world
        .sender::<A::MidKey, A::MidVal>()
        .with_partitioner(AppPartitioner(app.clone()));
    if let Some(c) = app.combine() {
        sender = sender.with_combiner(FnCombiner(c));
    }
    while let Some(split) = world.next_split::<u64>()? {
        for (k, v) in input.records(split as usize) {
            let mut err = None;
            app.map(k, v, &mut |mk, mv| {
                if err.is_none() {
                    if let Err(e) = sender.send(mk, mv) {
                        err = Some(e);
                    }
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
        }
    }
    let st = sender.finish()?;
    world.report_stats(&st)?;
    Ok(())
}

/// Reducer leg: drain `MPI_D_Recv` groups raw (the driver checkpoints them).
fn reducer_step<A: MapReduceApp>(
    world: &MpidWorld,
    timeout: std::time::Duration,
) -> Result<Groups<A>, mpid::MpidError> {
    let mut recv = world
        .receiver::<A::MidKey, A::MidVal>()
        .with_timeout(timeout);
    let mut groups = Vec::new();
    while let Some((k, vs)) = recv.recv()? {
        groups.push((k, vs));
    }
    Ok(groups)
}
