//! Cross-substrate determinism and the paper's fault-tolerance story end
//! to end: the same seeded fault plan replays bit-identically on both
//! cluster simulators, a crash-free plan changes nothing, and one node
//! crash is absorbed by Hadoop's re-execution, kills unchecked MPI-D fast,
//! and is survived by barrier-checkpointed MPI-D.

use desim::SimTime;
use faults::{FaultKind, FaultPlan};
use hadoop_sim::{run_job, run_job_faulty, HadoopConfig};
use mapred::{run_sim_mpid, run_sim_mpid_ft, FtOutcome, MpidFtMode, SimMpidConfig};
use netsim::{JobSpec, SimShuffle};

fn wc_spec() -> JobSpec {
    JobSpec {
        name: "wc".into(),
        input_bytes: 1 << 30,
        record_bytes: 80,
        map_cpu_ns_per_byte: 200.0,
        map_output_ratio: 1.6,
        combine_ratio: 0.02,
        combine_cpu_ns_per_byte: 0.0,
        reduce_cpu_ns_per_byte: 50.0,
        output_ratio: 1.0,
        shuffle: SimShuffle::Baseline,
    }
}

fn hadoop_cfg() -> HadoopConfig {
    let mut cfg = HadoopConfig::icpp2011(4, 4, 4);
    cfg.straggler_prob = 0.0;
    cfg
}

fn mpid_cfg() -> SimMpidConfig {
    SimMpidConfig::icpp2011_fig6().with_auto_splits(1 << 30)
}

#[test]
fn random_plans_replay_bit_identically_from_the_seed() {
    let horizon = SimTime::from_secs(600);
    let a = FaultPlan::random(42, 8, horizon, 6);
    let b = FaultPlan::random(42, 8, horizon, 6);
    assert_eq!(a, b, "same seed, same plan");
    assert_eq!(a.events().len(), 6);
    let c = FaultPlan::random(43, 8, horizon, 6);
    assert_ne!(a, c, "different seed, different plan");
    // The generator never crashes the master and keeps a worker quorum.
    a.validate(8).expect("generated plans are always valid");
    assert!(
        a.events()
            .iter()
            .filter(|e| e.kind == FaultKind::NodeCrash)
            .count()
            <= 1
    );
}

#[test]
fn same_plan_same_seed_is_bit_identical_on_both_substrates() {
    let plan = FaultPlan::random(7, 8, SimTime::from_secs(400), 5);

    let h1 = run_job_faulty(hadoop_cfg(), wc_spec(), plan.clone());
    let h2 = run_job_faulty(hadoop_cfg(), wc_spec(), plan.clone());
    assert_eq!(h1.makespan, h2.makespan);
    assert_eq!(h1.maps.len(), h2.maps.len());
    assert_eq!(h1.maps_reexecuted, h2.maps_reexecuted);
    assert_eq!(h1.crashed_workers, h2.crashed_workers);
    for (a, b) in h1.maps.iter().zip(&h2.maps) {
        assert_eq!((a.start, a.end), (b.start, b.end));
    }

    let mode = MpidFtMode::Checkpoint { interval_splits: 8 };
    let m1 = run_sim_mpid_ft(mpid_cfg(), wc_spec(), plan.clone(), mode);
    let m2 = run_sim_mpid_ft(mpid_cfg(), wc_spec(), plan, mode);
    assert_eq!(m1, m2, "MPI-D FT replay must be exact");
}

#[test]
fn crash_free_plan_is_identical_to_the_baseline_runs() {
    // Degradations omitted on purpose: the plan must be *empty* to promise
    // bit-identity with the fault-free entry points.
    let h_plain = run_job(hadoop_cfg(), wc_spec());
    let h_faulty = run_job_faulty(hadoop_cfg(), wc_spec(), FaultPlan::none());
    assert_eq!(h_plain.makespan, h_faulty.makespan);
    assert_eq!(h_plain.maps.len(), h_faulty.maps.len());

    let m_plain = run_sim_mpid(mpid_cfg(), wc_spec());
    let m_ft = run_sim_mpid_ft(
        mpid_cfg(),
        wc_spec(),
        FaultPlan::none(),
        MpidFtMode::Unchecked,
    );
    assert_eq!(
        m_ft.outcome,
        FtOutcome::Completed {
            makespan: m_plain.makespan
        }
    );
    assert_eq!(m_ft.checkpoint_overhead, SimTime::ZERO);
    assert_eq!(m_ft.wasted, SimTime::ZERO);
}

#[test]
fn one_node_crash_splits_the_three_stacks_apart() {
    // The tentpole claim, end to end, off the same plan: Hadoop re-executes
    // and completes with bounded slowdown; unchecked MPI-D loses the job;
    // checkpointed MPI-D restarts and completes.
    let h_healthy = run_job(hadoop_cfg(), wc_spec());
    let m_healthy = run_sim_mpid(mpid_cfg(), wc_spec());
    let crash_at = SimTime::from_secs_f64(
        h_healthy
            .makespan
            .as_secs_f64()
            .min(m_healthy.makespan.as_secs_f64())
            * 0.4,
    );
    let plan = FaultPlan::builder().crash(crash_at, 3).build();

    let hadoop = run_job_faulty(hadoop_cfg(), wc_spec(), plan.clone());
    assert!(!hadoop.job_failed, "Hadoop absorbs the crash");
    assert_eq!(hadoop.crashed_workers, 1);
    assert!(hadoop.makespan > h_healthy.makespan);
    assert!(
        hadoop.makespan.as_secs_f64() < h_healthy.makespan.as_secs_f64() * 3.0,
        "re-execution bounds the slowdown: {} vs {}",
        h_healthy.makespan,
        hadoop.makespan
    );

    let unchecked = run_sim_mpid_ft(mpid_cfg(), wc_spec(), plan.clone(), MpidFtMode::Unchecked);
    match unchecked.outcome {
        FtOutcome::Failed { at, lost_host } => {
            assert_eq!(lost_host, 3);
            assert!(at >= crash_at, "failure follows the crash");
        }
        other => panic!("unchecked MPI-D must lose the job, got {other:?}"),
    }

    let ckpt = run_sim_mpid_ft(
        mpid_cfg(),
        wc_spec(),
        plan,
        MpidFtMode::Checkpoint { interval_splits: 8 },
    );
    let FtOutcome::Completed { makespan } = ckpt.outcome else {
        panic!("checkpointed MPI-D must complete: {:?}", ckpt.outcome);
    };
    assert_eq!(ckpt.restarts, 1);
    assert!(makespan > m_healthy.makespan, "recovery is not free");
}

#[test]
fn benign_degradations_slow_but_never_fail_either_stack() {
    let h_healthy = run_job(hadoop_cfg(), wc_spec());
    let m_healthy = run_sim_mpid(mpid_cfg(), wc_spec());
    let horizon = SimTime::from_secs(
        h_healthy
            .makespan
            .as_secs_f64()
            .max(m_healthy.makespan.as_secs_f64()) as u64
            * 4,
    );
    let plan = FaultPlan::builder()
        .disk_slowdown(SimTime::from_secs(5), 2, 0.25)
        .nic_degrade(SimTime::from_secs(5), 4, 0.5)
        .straggler(SimTime::ZERO, 3, 4.0, horizon)
        .build();

    let hadoop = run_job_faulty(hadoop_cfg(), wc_spec(), plan.clone());
    assert!(!hadoop.job_failed);
    assert_eq!(hadoop.crashed_workers, 0);
    assert!(hadoop.makespan > h_healthy.makespan);

    let mpid = run_sim_mpid_ft(mpid_cfg(), wc_spec(), plan, MpidFtMode::Unchecked);
    let FtOutcome::Completed { makespan } = mpid.outcome else {
        panic!("benign faults must not fail MPI-D");
    };
    assert!(makespan > m_healthy.makespan);
}
