//! # faults — deterministic fault-injection plans for the cluster simulators
//!
//! The paper's discussion concedes the one axis where Hadoop beats MPI:
//! fault tolerance. Hadoop re-executes failed tasks and speculates on
//! stragglers; a plain MPI job dies with its slowest or failed rank. To
//! *measure* that claim instead of asserting it, this crate provides the
//! fault model both simulators (`hadoop-sim` and `mapred::sim`) inject from:
//!
//! * a [`FaultPlan`] is a schedule of [`FaultEvent`]s keyed to simulated
//!   time — node crashes, disk slowdowns, NIC degradations, link partitions
//!   with a heal time, and straggler-CPU windows;
//! * plans are plain data, built explicitly ([`FaultPlan::builder`]) or
//!   generated from a seed ([`FaultPlan::random`]) via `desim`'s
//!   deterministic [`SplitMix64`] — the same seed always yields the same
//!   plan, and the same plan drives bit-identical simulations;
//! * the injectors live in the simulators themselves (they own the event
//!   loops); this crate only describes *what* fails *when*, plus the pure
//!   queries the injectors need ([`FaultPlan::cpu_factor`],
//!   [`FaultPlan::after`], [`FaultPlan::crashed_before`]).
//!
//! ## Determinism contract
//!
//! A plan never reads wall clocks or ambient RNGs (enforced by
//! `cargo xtask lint`). Injection must not perturb the no-fault path: an
//! empty plan produces a simulation byte-identical to a run without the
//! fault machinery (regression-guarded in `tests/determinism.rs`).

#![warn(missing_docs)]

use desim::rng::SplitMix64;
use desim::SimTime;

/// What fails. The `host` it happens to lives on the enclosing
/// [`FaultEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The host dies: in-flight flows through any of its resources are
    /// dropped, new flows are rejected, and every task or rank placed there
    /// is lost. Host 0 (the master/head node) may not crash.
    NodeCrash,
    /// The host's disk degrades to `factor` × its nominal bandwidth
    /// (`0 < factor <= 1`), e.g. a failing spindle retrying sectors.
    DiskSlowdown {
        /// Remaining fraction of nominal disk bandwidth.
        factor: f64,
    },
    /// The host's NIC (both directions) degrades to `factor` × nominal
    /// (`0 < factor <= 1`), e.g. renegotiation down to 100 Mb/s.
    NicDegrade {
        /// Remaining fraction of nominal NIC bandwidth.
        factor: f64,
    },
    /// The network link between this host and `peer` is cut; in-flight
    /// flows between the pair stall (bytes already delivered are kept) and
    /// resume when the partition heals at `heal_at` (absolute sim time).
    LinkPartition {
        /// The other endpoint of the severed link.
        peer: usize,
        /// Absolute sim time at which the partition heals.
        heal_at: SimTime,
    },
    /// CPU on the host runs `factor` × slower (`factor >= 1`) for work
    /// started in the window `[at, until)` — a GC storm, a co-tenant, a
    /// thermal throttle. This is what speculative execution exists to mask.
    StragglerCpu {
        /// CPU-time multiplier while the window is active.
        factor: f64,
        /// Absolute sim time at which the host recovers.
        until: SimTime,
    },
}

impl FaultKind {
    /// Short label used for trace instants (`faults.inject` category).
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::NodeCrash => obs::names::FAULT_NODE_CRASH,
            FaultKind::DiskSlowdown { .. } => obs::names::FAULT_DISK_SLOWDOWN,
            FaultKind::NicDegrade { .. } => obs::names::FAULT_NIC_DEGRADE,
            FaultKind::LinkPartition { .. } => obs::names::FAULT_LINK_PARTITION,
            FaultKind::StragglerCpu { .. } => obs::names::FAULT_STRAGGLER_CPU,
        }
    }
}

/// One scheduled fault: at simulated time `at`, `kind` happens to `host`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Simulated time of injection.
    pub at: SimTime,
    /// Host the fault strikes (cluster host id; 0 is the master).
    pub host: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of fault events, sorted by injection time
/// (ties keep insertion order, so replay is exact).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

/// Fluent constructor for explicit plans.
#[derive(Debug, Default)]
pub struct FaultPlanBuilder {
    events: Vec<FaultEvent>,
}

impl FaultPlanBuilder {
    /// Kill `host` at `at`.
    pub fn crash(mut self, at: SimTime, host: usize) -> Self {
        self.events.push(FaultEvent {
            at,
            host,
            kind: FaultKind::NodeCrash,
        });
        self
    }

    /// Degrade `host`'s disk to `factor` × nominal from `at` onward.
    pub fn disk_slowdown(mut self, at: SimTime, host: usize, factor: f64) -> Self {
        self.events.push(FaultEvent {
            at,
            host,
            kind: FaultKind::DiskSlowdown { factor },
        });
        self
    }

    /// Degrade `host`'s NIC to `factor` × nominal from `at` onward.
    pub fn nic_degrade(mut self, at: SimTime, host: usize, factor: f64) -> Self {
        self.events.push(FaultEvent {
            at,
            host,
            kind: FaultKind::NicDegrade { factor },
        });
        self
    }

    /// Cut the link between `a` and `b` at `at`; heal it at `heal_at`.
    pub fn partition(mut self, at: SimTime, a: usize, b: usize, heal_at: SimTime) -> Self {
        self.events.push(FaultEvent {
            at,
            host: a,
            kind: FaultKind::LinkPartition { peer: b, heal_at },
        });
        self
    }

    /// Cut `host` off from every host in `peers` at `at`, healing at
    /// `heal_at` — one [`FaultKind::LinkPartition`] per peer. This is how a
    /// rack uplink failure is expressed: cut the master (or gateway) host
    /// from the rack's members in one call instead of enumerating O(n²)
    /// pairs.
    pub fn partition_set(
        mut self,
        at: SimTime,
        host: usize,
        peers: &[usize],
        heal_at: SimTime,
    ) -> Self {
        for &peer in peers {
            self = self.partition(at, host, peer, heal_at);
        }
        self
    }

    /// Slow `host`'s CPU by `factor` for work started in `[at, until)`.
    pub fn straggler(mut self, at: SimTime, host: usize, factor: f64, until: SimTime) -> Self {
        self.events.push(FaultEvent {
            at,
            host,
            kind: FaultKind::StragglerCpu { factor, until },
        });
        self
    }

    /// Finish the plan (events sorted by time, stable).
    pub fn build(mut self) -> FaultPlan {
        self.events.sort_by_key(|e| e.at);
        FaultPlan {
            events: self.events,
        }
    }
}

impl FaultPlan {
    /// The empty plan: no faults, simulation byte-identical to a run
    /// without the fault machinery.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Start building an explicit plan.
    pub fn builder() -> FaultPlanBuilder {
        FaultPlanBuilder::default()
    }

    /// Generate `n_events` faults over worker hosts `1..n_hosts` within
    /// `[horizon/8, horizon)`, deterministically from `seed`. At most one
    /// crash is generated (so a cluster of any size keeps a quorum of
    /// workers), and crash-host 0 never appears (the master survives).
    pub fn random(seed: u64, n_hosts: usize, horizon: SimTime, n_events: usize) -> Self {
        assert!(n_hosts >= 3, "need a master and at least two workers");
        let mut rng = SplitMix64::new(seed).derive("fault-plan");
        let mut b = FaultPlan::builder();
        let lo = horizon.as_nanos() / 8;
        let hi = horizon.as_nanos().max(lo + 1);
        let mut crashed = false;
        for _ in 0..n_events {
            let at = SimTime::from_nanos(rng.next_range(lo, hi));
            let host = 1 + rng.next_below((n_hosts - 1) as u64) as usize;
            match rng.next_below(5) {
                0 if !crashed => {
                    crashed = true;
                    b = b.crash(at, host);
                }
                1 => b = b.disk_slowdown(at, host, 0.1 + 0.8 * rng.next_f64()),
                2 => b = b.nic_degrade(at, host, 0.1 + 0.8 * rng.next_f64()),
                3 => {
                    let mut peer = 1 + rng.next_below((n_hosts - 1) as u64) as usize;
                    if peer == host {
                        peer = 1 + (host % (n_hosts - 1));
                    }
                    let heal = at + SimTime::from_nanos(rng.next_range(1, horizon.as_nanos() / 4));
                    b = b.partition(at, host, peer, heal);
                }
                _ => {
                    let until = at + SimTime::from_nanos(rng.next_range(1, horizon.as_nanos() / 2));
                    b = b.straggler(at, host, 2.0 + 6.0 * rng.next_f64(), until);
                }
            }
        }
        b.build()
    }

    /// The scheduled events, ascending by injection time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Check the plan against a cluster of `n_hosts` hosts. Rejects
    /// out-of-range hosts, a crash of host 0 (the master), crashes leaving
    /// fewer than one worker alive, non-positive or >1 degrade factors,
    /// straggler factors below 1, self-partitions, and heal times that
    /// don't follow their cut.
    pub fn validate(&self, n_hosts: usize) -> Result<(), String> {
        let mut crashes = 0usize;
        for e in &self.events {
            if e.host >= n_hosts {
                return Err(format!("fault host {} out of range (<{n_hosts})", e.host));
            }
            match &e.kind {
                FaultKind::NodeCrash => {
                    if e.host == 0 {
                        return Err("host 0 (master) may not crash".into());
                    }
                    crashes += 1;
                }
                FaultKind::DiskSlowdown { factor } | FaultKind::NicDegrade { factor } => {
                    if !(*factor > 0.0 && *factor <= 1.0) {
                        return Err(format!("degrade factor {factor} outside (0, 1]"));
                    }
                }
                FaultKind::LinkPartition { peer, heal_at } => {
                    if *peer >= n_hosts {
                        return Err(format!("partition peer {peer} out of range (<{n_hosts})"));
                    }
                    if *peer == e.host {
                        return Err("partition endpoints must differ".into());
                    }
                    if *heal_at <= e.at {
                        return Err("partition must heal after it is cut".into());
                    }
                }
                FaultKind::StragglerCpu { factor, until } => {
                    if *factor < 1.0 {
                        return Err(format!("straggler factor {factor} below 1"));
                    }
                    if *until <= e.at {
                        return Err("straggler window must end after it starts".into());
                    }
                }
            }
        }
        if crashes + 2 > n_hosts {
            return Err(format!(
                "{crashes} crashes leave no worker alive on {n_hosts} hosts"
            ));
        }
        Ok(())
    }

    /// Effective CPU-time multiplier on `host` for work starting at `at`:
    /// the product of every straggler window covering that instant, 1.0
    /// when none does.
    pub fn cpu_factor(&self, host: usize, at: SimTime) -> f64 {
        let mut f = 1.0;
        for e in &self.events {
            if let FaultKind::StragglerCpu { factor, until } = e.kind {
                if e.host == host && e.at <= at && at < until {
                    f *= factor;
                }
            }
        }
        f
    }

    /// Time of the first scheduled crash, with its host.
    pub fn first_crash(&self) -> Option<(SimTime, usize)> {
        self.events
            .iter()
            .find(|e| e.kind == FaultKind::NodeCrash)
            .map(|e| (e.at, e.host))
    }

    /// Hosts crashed strictly before `cutoff` (for restart drivers that
    /// re-run a job on the surviving hosts).
    pub fn crashed_before(&self, cutoff: SimTime) -> Vec<usize> {
        self.events
            .iter()
            .filter(|e| e.kind == FaultKind::NodeCrash && e.at < cutoff)
            .map(|e| e.host)
            .collect()
    }

    /// The plan's tail after `offset`, re-based so a restart driver can run
    /// the remainder against a fresh simulation starting at local time 0:
    /// embedded absolute times (injection, heal, until) shift left by
    /// `offset`. Events still *in effect* at the cut survive with an
    /// injection time of zero — a disk/NIC degradation is permanent, and a
    /// partition or straggler window straddling the cut keeps its remaining
    /// extent. Expired windows and past crashes are dropped (a restart
    /// driver accounts for dead hosts via [`FaultPlan::crashed_before`]).
    pub fn after(&self, offset: SimTime) -> FaultPlan {
        let shift = |t: SimTime| {
            if t > offset {
                SimTime::from_nanos(t.as_nanos() - offset.as_nanos())
            } else {
                SimTime::ZERO
            }
        };
        let events = self
            .events
            .iter()
            .filter(|e| match &e.kind {
                FaultKind::NodeCrash => e.at > offset,
                FaultKind::DiskSlowdown { .. } | FaultKind::NicDegrade { .. } => true,
                FaultKind::LinkPartition { heal_at, .. } => *heal_at > offset,
                FaultKind::StragglerCpu { until, .. } => *until > offset,
            })
            .map(|e| FaultEvent {
                at: shift(e.at),
                host: e.host,
                kind: match &e.kind {
                    FaultKind::LinkPartition { peer, heal_at } => FaultKind::LinkPartition {
                        peer: *peer,
                        heal_at: shift(*heal_at),
                    },
                    FaultKind::StragglerCpu { factor, until } => FaultKind::StragglerCpu {
                        factor: *factor,
                        until: shift(*until),
                    },
                    other => other.clone(),
                },
            })
            .collect();
        FaultPlan { events }
    }

    /// The same plan with every [`FaultKind::NodeCrash`] removed — what a
    /// restart driver feeds a replayed attempt once the crash has been
    /// consumed (the crashed process comes back healthy).
    pub fn without_crashes(&self) -> FaultPlan {
        FaultPlan {
            events: self
                .events
                .iter()
                .filter(|e| e.kind != FaultKind::NodeCrash)
                .cloned()
                .collect(),
        }
    }

    /// Emit one `faults.inject` instant per event onto `tracer` (pid =
    /// struck host), with the event's label and parameters as span args.
    pub fn emit_schedule(&self, tracer: &obs::Tracer) {
        for e in &self.events {
            tracer.instant_args(
                e.host as u32,
                0,
                e.kind.label(),
                obs::names::CAT_FAULTS_INJECT,
                e.at.as_nanos(),
                vec![("host", obs::ArgValue::U64(e.host as u64))],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sorts_by_time() {
        let p = FaultPlan::builder()
            .crash(SimTime::from_secs(20), 2)
            .disk_slowdown(SimTime::from_secs(5), 1, 0.5)
            .build();
        assert_eq!(p.events()[0].at, SimTime::from_secs(5));
        assert_eq!(p.events()[1].kind, FaultKind::NodeCrash);
        assert!(p.validate(8).is_ok());
    }

    #[test]
    fn random_plans_replay_from_the_seed() {
        let a = FaultPlan::random(42, 8, SimTime::from_secs(100), 6);
        let b = FaultPlan::random(42, 8, SimTime::from_secs(100), 6);
        let c = FaultPlan::random(43, 8, SimTime::from_secs(100), 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.validate(8).is_ok());
        assert!(!a.is_empty());
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let master_crash = FaultPlan::builder().crash(SimTime::from_secs(1), 0).build();
        assert!(master_crash.validate(8).is_err());
        let out_of_range = FaultPlan::builder().crash(SimTime::from_secs(1), 9).build();
        assert!(out_of_range.validate(8).is_err());
        let bad_factor = FaultPlan::builder()
            .nic_degrade(SimTime::from_secs(1), 1, 0.0)
            .build();
        assert!(bad_factor.validate(8).is_err());
        let heal_before_cut = FaultPlan::builder()
            .partition(SimTime::from_secs(5), 1, 2, SimTime::from_secs(4))
            .build();
        assert!(heal_before_cut.validate(8).is_err());
        let all_dead = FaultPlan::builder()
            .crash(SimTime::from_secs(1), 1)
            .crash(SimTime::from_secs(2), 2)
            .build();
        assert!(all_dead.validate(3).is_err());
    }

    #[test]
    fn partition_set_expands_to_pairwise_cuts() {
        let rack: Vec<usize> = (4..8).collect();
        let p = FaultPlan::builder()
            .partition_set(SimTime::from_secs(10), 0, &rack, SimTime::from_secs(30))
            .build();
        assert_eq!(p.events().len(), 4);
        for (e, peer) in p.events().iter().zip(rack) {
            assert_eq!(e.host, 0);
            assert_eq!(e.at, SimTime::from_secs(10));
            assert_eq!(
                e.kind,
                FaultKind::LinkPartition {
                    peer,
                    heal_at: SimTime::from_secs(30)
                }
            );
        }
        assert!(p.validate(8).is_ok());
        // Equivalent to the same cuts made one pair at a time.
        let manual = FaultPlan::builder()
            .partition(SimTime::from_secs(10), 0, 4, SimTime::from_secs(30))
            .partition(SimTime::from_secs(10), 0, 5, SimTime::from_secs(30))
            .partition(SimTime::from_secs(10), 0, 6, SimTime::from_secs(30))
            .partition(SimTime::from_secs(10), 0, 7, SimTime::from_secs(30))
            .build();
        assert_eq!(p, manual);
    }

    #[test]
    fn cpu_factor_windows() {
        let p = FaultPlan::builder()
            .straggler(SimTime::from_secs(10), 3, 4.0, SimTime::from_secs(20))
            .build();
        assert_eq!(p.cpu_factor(3, SimTime::from_secs(5)), 1.0);
        assert_eq!(p.cpu_factor(3, SimTime::from_secs(15)), 4.0);
        assert_eq!(p.cpu_factor(3, SimTime::from_secs(20)), 1.0);
        assert_eq!(p.cpu_factor(2, SimTime::from_secs(15)), 1.0);
    }

    #[test]
    fn after_rebases_the_tail() {
        let p = FaultPlan::builder()
            .crash(SimTime::from_secs(10), 1)
            .partition(SimTime::from_secs(30), 2, 3, SimTime::from_secs(50))
            .build();
        let tail = p.after(SimTime::from_secs(20));
        assert_eq!(tail.events().len(), 1);
        assert_eq!(tail.events()[0].at, SimTime::from_secs(10));
        match tail.events()[0].kind {
            FaultKind::LinkPartition { heal_at, .. } => {
                assert_eq!(heal_at, SimTime::from_secs(30));
            }
            _ => panic!("expected partition"),
        }
        assert_eq!(p.crashed_before(SimTime::from_secs(20)), vec![1]);
        assert_eq!(p.first_crash(), Some((SimTime::from_secs(10), 1)));
    }
}
