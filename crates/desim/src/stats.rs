//! Online statistics and histograms for simulation outputs.

use crate::SimTime;

/// Streaming summary statistics (Welford's algorithm for variance).
///
/// Accepts `f64` samples; [`OnlineStats::add_time`] is a convenience for
/// recording [`SimTime`] values in seconds.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty summary.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Record a [`SimTime`] sample, in seconds.
    pub fn add_time(&mut self, t: SimTime) {
        self.add(t.as_secs_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }
    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }
    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }
    /// Minimum sample (0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }
    /// Maximum sample (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
    /// Population variance (0 with fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }
    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merge another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A set of samples retained in full, for percentile queries.
///
/// Simulations in this suite produce at most a few million samples per run, so
/// retaining them is cheap and exact percentiles beat sketch error bars.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    data: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Empty sample set.
    pub fn new() -> Self {
        Samples {
            data: Vec::new(),
            sorted: true,
        }
    }

    /// Record one sample.
    pub fn add(&mut self, x: f64) {
        self.data.push(x);
        self.sorted = false;
    }

    /// Record a [`SimTime`] sample, in seconds.
    pub fn add_time(&mut self, t: SimTime) {
        self.add(t.as_secs_f64());
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.data.len()
    }
    /// True when no samples are recorded.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.data
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
    }

    /// Exact percentile (nearest-rank), `p` in `[0, 100]`. Returns 0 if empty.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * (self.data.len() as f64 - 1.0)).round() as usize;
        self.data[rank]
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// Read-only view of the raw samples (unsorted order not guaranteed).
    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    /// Summarize into [`OnlineStats`].
    pub fn summary(&self) -> OnlineStats {
        let mut s = OnlineStats::new();
        for &x in &self.data {
            s.add(x);
        }
        s
    }
}

/// Power-of-two bucketed histogram for byte/size distributions.
#[derive(Debug, Clone)]
pub struct Log2Histogram {
    buckets: Vec<u64>,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// Empty histogram covering the full `u64` range (65 buckets).
    pub fn new() -> Self {
        Log2Histogram {
            buckets: vec![0; 65],
        }
    }

    /// Record a value. Bucket `i` holds values in `[2^(i-1), 2^i)`, with
    /// bucket 0 holding exactly zero.
    pub fn add(&mut self, v: u64) {
        let idx = if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
    }

    /// Count in one bucket.
    pub fn bucket(&self, idx: usize) -> u64 {
        self.buckets.get(idx).copied().unwrap_or(0)
    }

    /// Total number of recorded values.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Iterate over `(bucket_upper_bound, count)` pairs for non-empty buckets.
    pub fn nonzero(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let bound = if i == 0 { 0 } else { 1u64 << (i - 1).min(63) };
                (bound, c)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn online_stats_empty_is_zeroed() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.add(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        b.add(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 3.0);
        let empty = OnlineStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn percentiles() {
        let mut s = Samples::new();
        for i in 1..=100 {
            s.add(i as f64);
        }
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 100.0);
        // Nearest-rank on 100 samples: rank round(0.5 * 99) = 50 -> value 51.
        assert_eq!(s.median(), 51.0);
        // Out-of-range p is clamped.
        assert_eq!(s.percentile(150.0), 100.0);
    }

    #[test]
    fn samples_empty() {
        let mut s = Samples::new();
        assert_eq!(s.percentile(50.0), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn log2_histogram_buckets() {
        let mut h = Log2Histogram::new();
        h.add(0);
        h.add(1);
        h.add(2);
        h.add(3);
        h.add(1024);
        assert_eq!(h.bucket(0), 1); // zero
        assert_eq!(h.bucket(1), 1); // [1,2)
        assert_eq!(h.bucket(2), 2); // [2,4)
        assert_eq!(h.bucket(11), 1); // [1024, 2048)
        assert_eq!(h.total(), 5);
        let nz: Vec<_> = h.nonzero().collect();
        assert!(nz.contains(&(1024, 1)));
    }
}
