//! Deterministic random-number helpers for simulations.
//!
//! Every stochastic element of a simulation (workload generation, heartbeat
//! phase offsets, service-time jitter) must be reproducible from a single
//! seed. This module provides a tiny, fast SplitMix64 generator with stream
//! derivation, so each simulated component can own an independent stream
//! derived from `(master_seed, component_label)` — adding a component never
//! perturbs the random numbers other components see.

/// SplitMix64: a tiny, high-quality 64-bit PRNG (public-domain algorithm by
/// Sebastiano Vigna). Not cryptographic.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derive an independent stream for a named component.
    pub fn derive(&self, label: &str) -> SplitMix64 {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        SplitMix64::new(self.state ^ h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // Lemire's multiply-shift with rejection for unbiased results.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // low < bound: possible bias region; check threshold.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi)` (`lo < hi`).
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.next_below(hi - lo)
    }

    /// Exponentially distributed value with the given mean.
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0);
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Value uniform in `[mean*(1-jitter), mean*(1+jitter)]`, for modelling
    /// bounded service-time noise.
    pub fn jittered(&mut self, mean: f64, jitter: f64) -> f64 {
        assert!((0.0..=1.0).contains(&jitter));
        mean * (1.0 + jitter * (2.0 * self.next_f64() - 1.0))
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derive_gives_independent_streams() {
        let root = SplitMix64::new(7);
        let mut x = root.derive("disk");
        let mut y = root.derive("net");
        // Streams differ from each other and from the root sequence.
        let xs: Vec<u64> = (0..8).map(|_| x.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| y.next_u64()).collect();
        assert_ne!(xs, ys);
        // And deriving again with the same label reproduces the stream.
        let mut x2 = root.derive("disk");
        let xs2: Vec<u64> = (0..8).map(|_| x2.next_u64()).collect();
        assert_eq!(xs, xs2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(1);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn next_below_unbiased_coverage() {
        let mut r = SplitMix64::new(3);
        let mut seen = [0u32; 10];
        for _ in 0..10_000 {
            seen[r.next_below(10) as usize] += 1;
        }
        for (i, &c) in seen.iter().enumerate() {
            assert!(c > 700, "bucket {i} undersampled: {c}");
        }
    }

    #[test]
    fn next_range_bounds() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let v = r.next_range(5, 8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = SplitMix64::new(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_exp(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn jitter_bounds() {
        let mut r = SplitMix64::new(13);
        for _ in 0..1000 {
            let v = r.jittered(100.0, 0.2);
            assert!((80.0..=120.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(17);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
