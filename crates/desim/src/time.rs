//! Simulated time: an integer nanosecond counter.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time (or a duration), counted in whole nanoseconds.
///
/// One type serves as both instant and duration — simulations in this suite
/// never need the instant/duration distinction enough to justify two types,
/// and arithmetic stays obvious. All arithmetic saturates on overflow (an
/// overflowed simulation clock is meaningless; saturating keeps behaviour
/// defined and monotone).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero / the empty duration.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }
    /// From whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us.saturating_mul(1_000))
    }
    /// From whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms.saturating_mul(1_000_000))
    }
    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s.saturating_mul(1_000_000_000))
    }
    /// From fractional seconds. Negative or non-finite input clamps to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimTime::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(ns.round() as u64)
        }
    }

    /// Whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
    /// The larger of two times.
    pub fn max(self, rhs: SimTime) -> SimTime {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }
    /// The smaller of two times.
    pub fn min(self, rhs: SimTime) -> SimTime {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }
    /// True if this is the zero time.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Duration to move `bytes` at `bytes_per_sec` (rounds up to ≥1 ns for any
    /// nonzero transfer so progress events always advance the clock).
    pub fn for_bytes(bytes: u64, bytes_per_sec: f64) -> SimTime {
        if bytes == 0 {
            return SimTime::ZERO;
        }
        assert!(
            bytes_per_sec > 0.0 && bytes_per_sec.is_finite(),
            "rate must be positive and finite, got {bytes_per_sec}"
        );
        let ns = (bytes as f64) / bytes_per_sec * 1e9;
        SimTime((ns.ceil() as u64).max(1))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", ns)
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        self.saturating_add(rhs)
    }
}
impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}
impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        self.saturating_sub(rhs)
    }
}
impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}
impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0.saturating_mul(rhs))
    }
}
impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> SimTime {
        SimTime::from_secs_f64(self.as_secs_f64() * rhs)
    }
}
impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}
impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_millis(5).as_millis_f64(), 5.0);
        assert_eq!(SimTime::from_micros(7).as_micros_f64(), 7.0);
        assert_eq!(SimTime::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn from_secs_f64_edge_cases() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(1e30), SimTime::MAX);
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(SimTime::MAX + SimTime::from_secs(1), SimTime::MAX);
        assert_eq!(SimTime::ZERO - SimTime::from_secs(1), SimTime::ZERO);
        assert_eq!(SimTime::MAX * 2, SimTime::MAX);
    }

    #[test]
    fn for_bytes_basic() {
        // 1000 bytes at 1000 B/s = 1 s.
        assert_eq!(SimTime::for_bytes(1000, 1000.0), SimTime::from_secs(1));
        assert_eq!(SimTime::for_bytes(0, 1.0), SimTime::ZERO);
        // Tiny transfers still advance the clock.
        assert!(SimTime::for_bytes(1, 1e12).as_nanos() >= 1);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn for_bytes_rejects_zero_rate() {
        SimTime::for_bytes(10, 0.0);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", SimTime::from_nanos(17)), "17ns");
        assert_eq!(format!("{}", SimTime::from_micros(2)), "2.000us");
        assert_eq!(format!("{}", SimTime::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(2)), "2.000s");
    }
}
