//! # desim — deterministic discrete-event simulation kernel
//!
//! A small, allocation-conscious discrete-event simulation (DES) kernel used by
//! every simulator in the MPI-D reproduction suite (`netsim`, `hadoop-sim`,
//! `mapred::sim`).
//!
//! Design points:
//!
//! * **Integer time.** Simulated time is a `u64` count of nanoseconds
//!   ([`SimTime`]). Floating-point clocks accumulate rounding error and make
//!   event ordering platform-dependent; integer nanoseconds keep runs
//!   bit-for-bit reproducible.
//! * **Deterministic tie-breaking.** Events scheduled for the same instant
//!   execute in scheduling order (FIFO), enforced by a monotonically increasing
//!   sequence number. This makes simulations reproducible regardless of heap
//!   internals.
//! * **State/scheduler split.** An event handler receives `&mut S` (the user's
//!   simulation state) *and* `&mut Scheduler<S>` so it can schedule follow-up
//!   events while mutating state — without fighting the borrow checker.
//! * **Cancellation.** [`Scheduler::schedule`] returns an [`EventId`] that can
//!   be cancelled in O(1) amortized time (lazy deletion at pop).
//!
//! ```
//! use desim::{Sim, SimTime};
//!
//! struct Counter { fired: u32 }
//! let mut sim = Sim::new(Counter { fired: 0 });
//! sim.schedule_in(SimTime::from_millis(5), |s: &mut Counter, sched| {
//!     s.fired += 1;
//!     // chain another event 1 ms later
//!     sched.schedule_in(SimTime::from_millis(1), |s: &mut Counter, _| s.fired += 1);
//! });
//! sim.run();
//! assert_eq!(sim.state.fired, 2);
//! assert_eq!(sim.now(), SimTime::from_millis(6));
//! ```

#![warn(missing_docs)]

pub mod rng;
pub mod stats;
mod time;

pub use time::SimTime;

use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

/// Boxed event handler: runs against the user state and may schedule more events.
pub type Handler<S> = Box<dyn FnOnce(&mut S, &mut Scheduler<S>)>;

/// Observability hook into the scheduler. All methods have empty default
/// bodies; implement only what you need. Installed with
/// [`Scheduler::set_probe`], the probe sees every schedule/cancel/execute.
/// When no probe is installed the hooks cost one branch on a `None`.
pub trait SchedProbe {
    /// An event was scheduled at `at` while the clock read `now`.
    fn on_schedule(&mut self, now: SimTime, at: SimTime, id: EventId) {
        let _ = (now, at, id);
    }
    /// A pending event was cancelled (called only on the first, successful
    /// cancellation).
    fn on_cancel(&mut self, now: SimTime, id: EventId) {
        let _ = (now, id);
    }
    /// An event is about to execute at `at`; `pending` is the queue depth
    /// after removing this event.
    fn on_execute(&mut self, at: SimTime, id: EventId, pending: usize) {
        let _ = (at, id, pending);
    }
}

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<S> {
    at: SimTime,
    seq: u64,
    handler: Handler<S>,
}

// Order entries so that the *earliest* (then lowest-seq) entry is the max of
// the heap by reversing the comparison; we use a max-heap (`BinaryHeap`).
impl<S> PartialEq for Entry<S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<S> Eq for Entry<S> {}
impl<S> PartialOrd for Entry<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Entry<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: smaller (time, seq) = greater priority.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The event queue and clock. Handlers receive `&mut Scheduler<S>` so they can
/// schedule follow-up work while the simulation state is mutably borrowed.
pub struct Scheduler<S> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Entry<S>>,
    cancelled: BTreeSet<u64>,
    executed: u64,
    probe: Option<Box<dyn SchedProbe>>,
}

impl<S> Default for Scheduler<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> Scheduler<S> {
    /// Create an empty scheduler with the clock at zero.
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            cancelled: BTreeSet::new(),
            executed: 0,
            probe: None,
        }
    }

    /// Install an observability probe (replacing any previous one).
    pub fn set_probe(&mut self, probe: Box<dyn SchedProbe>) {
        self.probe = Some(probe);
    }

    /// Remove and return the installed probe, if any.
    pub fn take_probe(&mut self) -> Option<Box<dyn SchedProbe>> {
        self.probe.take()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending (excluding lazily-cancelled ones).
    pub fn pending(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Schedule `handler` to run at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past (before [`Scheduler::now`]): a DES must
    /// never travel backwards.
    pub fn schedule(
        &mut self,
        at: SimTime,
        handler: impl FnOnce(&mut S, &mut Scheduler<S>) + 'static,
    ) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: now={:?} at={:?}",
            self.now,
            at
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            at,
            seq,
            handler: Box::new(handler),
        });
        if let Some(p) = self.probe.as_mut() {
            p.on_schedule(self.now, at, EventId(seq));
        }
        EventId(seq)
    }

    /// Schedule `handler` to run `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimTime,
        handler: impl FnOnce(&mut S, &mut Scheduler<S>) + 'static,
    ) -> EventId {
        let at = self.now.saturating_add(delay);
        self.schedule(at, handler)
    }

    /// Cancel a previously scheduled event. Returns `true` the first time a
    /// not-yet-executed event is cancelled, `false` otherwise.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.seq {
            return false;
        }
        let fresh = self.cancelled.insert(id.0);
        if fresh {
            if let Some(p) = self.probe.as_mut() {
                p.on_cancel(self.now, id);
            }
        }
        fresh
    }

    /// Pop the next runnable (non-cancelled) event, advancing the clock.
    fn pop(&mut self) -> Option<Entry<S>> {
        while let Some(e) = self.heap.pop() {
            if self.cancelled.remove(&e.seq) {
                continue;
            }
            debug_assert!(e.at >= self.now);
            self.now = e.at;
            self.executed += 1;
            if let Some(p) = self.probe.as_mut() {
                let pending = self.heap.len() - self.cancelled.len();
                p.on_execute(e.at, EventId(e.seq), pending);
            }
            return Some(e);
        }
        None
    }

    /// Time of the next runnable event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(e) = self.heap.peek() {
            if self.cancelled.contains(&e.seq) {
                let e = self.heap.pop().unwrap();
                self.cancelled.remove(&e.seq);
                continue;
            }
            return Some(e.at);
        }
        None
    }
}

/// A complete simulation: user state plus a [`Scheduler`].
pub struct Sim<S> {
    /// The user's simulation state, freely accessible between runs.
    pub state: S,
    sched: Scheduler<S>,
}

impl<S> Sim<S> {
    /// Create a simulation around `state` with the clock at zero.
    pub fn new(state: S) -> Self {
        Sim {
            state,
            sched: Scheduler::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Access the scheduler (e.g. to seed initial events or cancel).
    pub fn scheduler(&mut self) -> &mut Scheduler<S> {
        &mut self.sched
    }

    /// Schedule an event at an absolute time. See [`Scheduler::schedule`].
    pub fn schedule(
        &mut self,
        at: SimTime,
        handler: impl FnOnce(&mut S, &mut Scheduler<S>) + 'static,
    ) -> EventId {
        self.sched.schedule(at, handler)
    }

    /// Schedule an event after a delay. See [`Scheduler::schedule_in`].
    pub fn schedule_in(
        &mut self,
        delay: SimTime,
        handler: impl FnOnce(&mut S, &mut Scheduler<S>) + 'static,
    ) -> EventId {
        self.sched.schedule_in(delay, handler)
    }

    /// Run until the event queue is empty. Returns the final time.
    pub fn run(&mut self) -> SimTime {
        while let Some(e) = self.sched.pop() {
            (e.handler)(&mut self.state, &mut self.sched);
        }
        self.sched.now()
    }

    /// Run until the queue is empty or the clock would pass `until`.
    /// Events scheduled exactly at `until` *are* executed; afterwards the
    /// clock rests at `until` even if no event fired there.
    pub fn run_until(&mut self, until: SimTime) -> SimTime {
        loop {
            match self.sched.peek_time() {
                Some(t) if t <= until => {
                    let e = self.sched.pop().expect("peeked event vanished");
                    (e.handler)(&mut self.state, &mut self.sched);
                }
                _ => break,
            }
        }
        if self.sched.now() < until {
            self.sched.now = until;
        }
        self.sched.now()
    }

    /// Execute at most one event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        match self.sched.pop() {
            Some(e) => {
                (e.handler)(&mut self.state, &mut self.sched);
                true
            }
            None => false,
        }
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.sched.executed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Default)]
    struct Log(Vec<(u64, &'static str)>);

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Sim::new(Log::default());
        sim.schedule(SimTime::from_nanos(30), |s: &mut Log, sc| {
            s.0.push((sc.now().as_nanos(), "c"))
        });
        sim.schedule(SimTime::from_nanos(10), |s: &mut Log, sc| {
            s.0.push((sc.now().as_nanos(), "a"))
        });
        sim.schedule(SimTime::from_nanos(20), |s: &mut Log, sc| {
            s.0.push((sc.now().as_nanos(), "b"))
        });
        sim.run();
        assert_eq!(sim.state.0, vec![(10, "a"), (20, "b"), (30, "c")]);
    }

    #[test]
    fn same_time_events_run_fifo() {
        let mut sim = Sim::new(Log::default());
        for name in ["first", "second", "third"] {
            sim.schedule(SimTime::from_nanos(5), move |s: &mut Log, _| {
                s.0.push((5, name))
            });
        }
        sim.run();
        let names: Vec<_> = sim.state.0.iter().map(|e| e.1).collect();
        assert_eq!(names, vec!["first", "second", "third"]);
    }

    #[test]
    fn handlers_can_chain_events() {
        let mut sim = Sim::new(0u32);
        sim.schedule(SimTime::from_nanos(1), |s: &mut u32, sc| {
            *s += 1;
            sc.schedule_in(SimTime::from_nanos(1), |s: &mut u32, sc| {
                *s += 10;
                sc.schedule_in(SimTime::from_nanos(1), |s: &mut u32, _| *s += 100);
            });
        });
        let end = sim.run();
        assert_eq!(sim.state, 111);
        assert_eq!(end, SimTime::from_nanos(3));
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut sim = Sim::new(0u32);
        let id = sim.schedule(SimTime::from_nanos(10), |s: &mut u32, _| *s += 1);
        sim.schedule(SimTime::from_nanos(5), |s: &mut u32, _| *s += 100);
        assert!(sim.scheduler().cancel(id));
        assert!(!sim.scheduler().cancel(id), "double cancel returns false");
        sim.run();
        assert_eq!(sim.state, 100);
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut sim = Sim::new(0u32);
        sim.schedule(SimTime::from_nanos(10), |s: &mut u32, _| *s += 1);
        sim.schedule(SimTime::from_nanos(20), |s: &mut u32, _| *s += 1);
        sim.schedule(SimTime::from_nanos(30), |s: &mut u32, _| *s += 1);
        let t = sim.run_until(SimTime::from_nanos(20));
        assert_eq!(sim.state, 2, "events at exactly `until` run");
        assert_eq!(t, SimTime::from_nanos(20));
        // Clock advances to `until` even with no event exactly there.
        let t = sim.run_until(SimTime::from_nanos(25));
        assert_eq!(t, SimTime::from_nanos(25));
        sim.run();
        assert_eq!(sim.state, 3);
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Sim::new(());
        sim.schedule(SimTime::from_nanos(10), |_, sc| {
            sc.schedule(SimTime::from_nanos(5), |_, _| {});
        });
        sim.run();
    }

    #[test]
    fn step_executes_single_event() {
        let mut sim = Sim::new(0u32);
        sim.schedule(SimTime::from_nanos(1), |s: &mut u32, _| *s += 1);
        sim.schedule(SimTime::from_nanos(2), |s: &mut u32, _| *s += 1);
        assert!(sim.step());
        assert_eq!(sim.state, 1);
        assert!(sim.step());
        assert!(!sim.step());
    }

    #[test]
    fn executed_and_pending_counters() {
        let mut sim = Sim::new(());
        let a = sim.schedule(SimTime::from_nanos(1), |_, _| {});
        sim.schedule(SimTime::from_nanos(2), |_, _| {});
        assert_eq!(sim.scheduler().pending(), 2);
        sim.scheduler().cancel(a);
        assert_eq!(sim.scheduler().pending(), 1);
        sim.run();
        assert_eq!(sim.executed(), 1);
    }

    #[test]
    fn probe_sees_schedule_cancel_execute() {
        #[derive(Default)]
        struct Counts {
            scheduled: u32,
            cancelled: u32,
            executed: u32,
        }
        impl SchedProbe for Rc<RefCell<Counts>> {
            fn on_schedule(&mut self, _now: SimTime, _at: SimTime, _id: EventId) {
                self.borrow_mut().scheduled += 1;
            }
            fn on_cancel(&mut self, _now: SimTime, _id: EventId) {
                self.borrow_mut().cancelled += 1;
            }
            fn on_execute(&mut self, _at: SimTime, _id: EventId, _pending: usize) {
                self.borrow_mut().executed += 1;
            }
        }
        let counts = Rc::new(RefCell::new(Counts::default()));
        let mut sim = Sim::new(());
        sim.scheduler().set_probe(Box::new(counts.clone()));
        let a = sim.schedule(SimTime::from_nanos(1), |_, _| {});
        sim.schedule(SimTime::from_nanos(2), |_, sc| {
            sc.schedule_in(SimTime::from_nanos(1), |_, _| {});
        });
        sim.scheduler().cancel(a);
        sim.scheduler().cancel(a); // double cancel: not reported twice
        sim.run();
        let c = counts.borrow();
        assert_eq!((c.scheduled, c.cancelled, c.executed), (3, 1, 2));
    }

    #[test]
    fn interleaved_cancel_from_inside_handler() {
        struct St {
            fired: Rc<RefCell<Vec<&'static str>>>,
            victim: Option<EventId>,
        }
        let fired = Rc::new(RefCell::new(vec![]));
        let mut sim = Sim::new(St {
            fired: fired.clone(),
            victim: None,
        });
        let victim = sim.schedule(SimTime::from_nanos(20), |s: &mut St, _| {
            s.fired.borrow_mut().push("victim");
        });
        sim.state.victim = Some(victim);
        sim.schedule(SimTime::from_nanos(10), |s: &mut St, sc| {
            s.fired.borrow_mut().push("assassin");
            let v = s.victim.take().unwrap();
            assert!(sc.cancel(v));
        });
        sim.run();
        assert_eq!(*fired.borrow(), vec!["assassin"]);
    }
}
