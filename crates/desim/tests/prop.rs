//! Property tests for the desim kernel: ordering, determinism, statistics.

use desim::stats::{OnlineStats, Samples};
use desim::{Sim, SimTime};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    /// Whatever order events are scheduled in, they execute in nondecreasing
    /// time order, with FIFO tie-breaking among equal timestamps.
    #[test]
    fn events_execute_in_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let log: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(vec![]));
        let mut sim = Sim::new(());
        for (idx, &t) in times.iter().enumerate() {
            let log = log.clone();
            sim.schedule(SimTime::from_nanos(t), move |_, sc| {
                log.borrow_mut().push((sc.now().as_nanos(), idx));
            });
        }
        sim.run();
        let log = log.borrow();
        prop_assert_eq!(log.len(), times.len());
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// Two identical schedules produce identical execution traces.
    #[test]
    fn deterministic_replay(times in proptest::collection::vec(0u64..500, 1..100)) {
        let run = |times: &[u64]| {
            let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(vec![]));
            let mut sim = Sim::new(());
            for &t in times {
                let log = log.clone();
                sim.schedule(SimTime::from_nanos(t), move |_, sc| {
                    log.borrow_mut().push(sc.now().as_nanos());
                });
            }
            sim.run();
            Rc::try_unwrap(log).unwrap().into_inner()
        };
        prop_assert_eq!(run(&times), run(&times));
    }

    /// run_until(t) then run() visits exactly the same events as a plain run().
    #[test]
    fn run_until_is_a_prefix(times in proptest::collection::vec(0u64..1000, 1..100), cut in 0u64..1000) {
        let build = |log: Rc<RefCell<Vec<u64>>>, times: &[u64]| {
            let mut sim = Sim::new(());
            for &t in times {
                let log = log.clone();
                sim.schedule(SimTime::from_nanos(t), move |_, sc| {
                    log.borrow_mut().push(sc.now().as_nanos());
                });
            }
            sim
        };
        let full: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(vec![]));
        build(full.clone(), &times).run();

        let split: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(vec![]));
        let mut sim = build(split.clone(), &times);
        sim.run_until(SimTime::from_nanos(cut));
        sim.run();
        prop_assert_eq!(&*full.borrow(), &*split.borrow());
    }

    /// OnlineStats mean/min/max match naive computation.
    #[test]
    fn online_stats_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 1..500)) {
        let mut s = OnlineStats::new();
        for &x in &xs { s.add(x); }
        let naive_mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean() - naive_mean).abs() < 1e-6 * (1.0 + naive_mean.abs()));
        prop_assert_eq!(s.min(), xs.iter().cloned().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max(), xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    /// Merging summaries of any split of a sample stream is equivalent to
    /// summarizing the whole stream (the parallel Welford combine is exact
    /// up to float round-off) — the property per-actor trace aggregation
    /// relies on when per-rank statistics are folded into job totals.
    #[test]
    fn online_stats_merge_of_splits_equals_whole(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..400),
        cut in 0usize..400,
    ) {
        let cut = cut.min(xs.len());
        let mut whole = OnlineStats::new();
        for &x in &xs { whole.add(x); }
        let mut left = OnlineStats::new();
        for &x in &xs[..cut] { left.add(x); }
        let mut right = OnlineStats::new();
        for &x in &xs[cut..] { right.add(x); }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert_eq!(left.min(), whole.min());
        prop_assert_eq!(left.max(), whole.max());
        let scale = 1.0 + whole.mean().abs();
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-9 * scale,
            "mean {} vs {}", left.mean(), whole.mean());
        let vscale = 1.0 + whole.variance().abs();
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-6 * vscale,
            "variance {} vs {}", left.variance(), whole.variance());
        // Merging an empty summary is the identity in both directions.
        let mut id = whole.clone();
        id.merge(&OnlineStats::new());
        prop_assert_eq!(id.count(), whole.count());
        prop_assert_eq!(id.mean(), whole.mean());
    }

    /// Percentile is always one of the samples, and monotone in p.
    #[test]
    fn percentile_monotone(xs in proptest::collection::vec(0f64..1e6, 1..300)) {
        let mut s = Samples::new();
        for &x in &xs { s.add(x); }
        let mut last = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = s.percentile(p);
            prop_assert!(xs.contains(&v));
            prop_assert!(v >= last);
            last = v;
        }
    }
}
