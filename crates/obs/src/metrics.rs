//! Scalar metrics registry: monotonic counters, gauges, and log₂-bucketed
//! histograms with p50/p95/p99 estimation. `BTreeMap`-backed so rendering is
//! deterministic.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt::Write as _;

type Key = Cow<'static, str>;

/// Log₂-bucketed histogram of `u64` samples. Bucket `i` (for `i >= 1`) holds
/// values in `[2^(i-1), 2^i)`; bucket 0 holds zeros. Percentiles are
/// estimated at the geometric midpoint of the containing bucket, clamped to
/// the observed min/max — ≤ √2 relative error, constant memory.
#[derive(Debug, Clone)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 65],
        }
    }
}

impl Histogram {
    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Record one sample.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest observed sample.
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Estimated `q`-quantile (`0.0..=1.0`); `None` with no samples.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if q >= 1.0 {
            return Some(self.max as f64);
        }
        let rank = crate::quantile::nearest_rank(self.count, q);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            seen += n;
            if seen > rank {
                let est = if i == 0 {
                    0.0
                } else {
                    // Geometric midpoint of [2^(i-1), 2^i).
                    2f64.powf(i as f64 - 0.5)
                };
                return Some(est.clamp(self.min as f64, self.max as f64));
            }
        }
        Some(self.max as f64)
    }
}

/// Named counters, gauges, and histograms.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, f64>,
    hists: BTreeMap<Key, Histogram>,
}

impl Metrics {
    /// Empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Add `delta` to a monotonic counter (created at 0).
    pub fn inc(&mut self, name: impl Into<Key>, delta: u64) {
        *self.counters.entry(name.into()).or_insert(0) += delta;
    }

    /// Current counter value (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters in ascending name order — a stable snapshot for
    /// serializers (e.g. the perf harness embedding counters in BENCH.json).
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_ref(), *v))
    }

    /// Set a gauge to `value`.
    pub fn set_gauge(&mut self, name: impl Into<Key>, value: f64) {
        self.gauges.insert(name.into(), value);
    }

    /// Current gauge value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record a histogram sample.
    pub fn observe(&mut self, name: impl Into<Key>, value: u64) {
        self.hists.entry(name.into()).or_default().observe(value);
    }

    /// The named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Merge another registry into this one (counters add, gauges overwrite,
    /// histograms bucket-wise add).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.hists {
            let mine = self.hists.entry(k.clone()).or_default();
            mine.count += h.count;
            mine.sum = mine.sum.saturating_add(h.sum);
            mine.min = mine.min.min(h.min);
            mine.max = mine.max.max(h.max);
            for (b, n) in mine.buckets.iter_mut().zip(h.buckets.iter()) {
                *b += n;
            }
        }
    }

    /// Deterministic plain-text dump (sorted by name within each section).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<40} {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "  {k:<40} {v:.3}");
            }
        }
        if !self.hists.is_empty() {
            out.push_str("histograms:\n");
            for (k, h) in &self.hists {
                let _ = writeln!(
                    out,
                    "  {k:<40} n={} mean={:.1} p50={:.1} p95={:.1} p99={:.1} max={}",
                    h.count(),
                    h.mean(),
                    h.quantile(0.50).unwrap_or(0.0),
                    h.quantile(0.95).unwrap_or(0.0),
                    h.quantile(0.99).unwrap_or(0.0),
                    h.max(),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut m = Metrics::new();
        m.inc("spills", 2);
        m.inc("spills", 3);
        m.set_gauge("ratio", 0.5);
        assert_eq!(m.counter("spills"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("ratio"), Some(0.5));
    }

    #[test]
    fn histogram_percentiles_bracket_truth() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 1000);
        // Log2 buckets: estimates are within a factor of √2 of the exact
        // percentile, and always inside [min, max].
        let p50 = h.quantile(0.5).unwrap();
        assert!((500.0 / 1.5..=500.0 * 1.5).contains(&p50), "p50={p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((990.0 / 1.5..=1000.0).contains(&p99), "p99={p99}");
        assert_eq!(h.quantile(1.0), Some(1000.0));
    }

    #[test]
    fn histogram_zero_and_single() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), None);
        h.observe(0);
        assert_eq!(h.quantile(0.5), Some(0.0));
        h.observe(0);
        h.observe(0);
        assert_eq!(h.quantile(0.99), Some(0.0));
    }

    #[test]
    fn counters_snapshot_is_name_ordered() {
        let mut m = Metrics::new();
        m.inc("zz", 7);
        m.inc("aa", 3);
        let snap: Vec<(&str, u64)> = m.counters().collect();
        assert_eq!(snap, vec![("aa", 3), ("zz", 7)]);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Metrics::new();
        a.inc("n", 1);
        a.observe("lat", 10);
        let mut b = Metrics::new();
        b.inc("n", 2);
        b.observe("lat", 1000);
        a.merge(&b);
        assert_eq!(a.counter("n"), 3);
        let h = a.histogram("lat").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 1000);
    }

    // Merge consistency: merging two histograms must be indistinguishable
    // from observing the concatenated sample stream, and both must agree
    // with the exact nearest-rank percentile up to the log₂-bucket blur
    // (factor √2 each way, clamped to [min, max]).
    proptest::proptest! {
        #[test]
        fn prop_merge_matches_concatenation(
            xs in proptest::collection::vec(0u64..1_000_000, 1..200),
            ys in proptest::collection::vec(0u64..1_000_000, 1..200),
        ) {
            let mut ha = Histogram::default();
            let mut hb = Histogram::default();
            let mut hall = Histogram::default();
            for &x in &xs {
                ha.observe(x);
                hall.observe(x);
            }
            for &y in &ys {
                hb.observe(y);
                hall.observe(y);
            }
            let mut merged = Metrics::new();
            {
                let mut a = Metrics::new();
                a.hists.insert("h".into(), ha);
                let mut b = Metrics::new();
                b.hists.insert("h".into(), hb);
                merged.merge(&a);
                merged.merge(&b);
            }
            let m = merged.histogram("h").unwrap();
            proptest::prop_assert_eq!(m.count(), hall.count());
            proptest::prop_assert_eq!(m.sum(), hall.sum());
            proptest::prop_assert_eq!(m.max(), hall.max());
            proptest::prop_assert_eq!(m.buckets, hall.buckets);

            let mut sorted: Vec<u64> = xs.iter().chain(ys.iter()).copied().collect();
            sorted.sort_unstable();
            for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                let est = m.quantile(q).unwrap();
                let exact = crate::quantile::percentile_sorted(&sorted, q) as f64;
                proptest::prop_assert_eq!(m.quantile(q), hall.quantile(q));
                // Same rank as the exact helper; value blurred ≤ √2 by the
                // bucket midpoint, except where clamping pins it exactly.
                let lo = (exact / std::f64::consts::SQRT_2) - 1.0;
                let hi = (exact * std::f64::consts::SQRT_2) + 1.0;
                proptest::prop_assert!(
                    (lo..=hi).contains(&est),
                    "q={} est={} exact={}", q, est, exact
                );
            }
        }
    }

    #[test]
    fn render_is_deterministic_and_sorted() {
        let mut m = Metrics::new();
        m.inc("zz", 1);
        m.inc("aa", 1);
        m.observe("lat", 7);
        let r1 = m.render();
        let r2 = m.render();
        assert_eq!(r1, r2);
        assert!(r1.find("aa").unwrap() < r1.find("zz").unwrap());
    }
}
