//! Chrome trace-event JSON export (Perfetto / `chrome://tracing` loadable).
//!
//! Determinism contract: the output is a pure function of the [`Trace`]
//! contents. Timestamps are printed from integer nanoseconds with fixed-point
//! formatting (`µs.3`), metadata comes from `BTreeMap`s, and event order is
//! whatever [`Trace::sort`] produced — no wall clock, no hash-map iteration,
//! no float rounding enters the byte stream.

use crate::{ArgValue, Event, Phase, Trace};
use std::fmt::Write as _;

/// Serialize a trace to Chrome trace-event JSON (object form, with
/// `traceEvents` plus process/thread-name metadata records).
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(64 + trace.events().len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for (pid, name) in trace.process_names() {
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        );
    }
    for ((pid, tid), name) in trace.thread_names() {
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        );
    }
    for ev in trace.events() {
        sep(&mut out, &mut first);
        write_event(&mut out, ev);
    }
    out.push_str("]}\n");
    out
}

/// Serialize and write to `path`.
pub fn write_chrome_trace(trace: &Trace, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, to_chrome_json(trace))
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

fn write_event(out: &mut String, ev: &Event) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":",
        escape(&ev.name),
        escape(ev.cat),
        ev.pid,
        ev.tid
    );
    write_us(out, ev.ts_ns);
    match &ev.ph {
        Phase::Complete { dur_ns } => {
            out.push_str(",\"ph\":\"X\",\"dur\":");
            write_us(out, *dur_ns);
        }
        Phase::Instant => out.push_str(",\"ph\":\"i\",\"s\":\"t\""),
        Phase::Counter { value } => {
            out.push_str(",\"ph\":\"C\",\"args\":{\"value\":");
            write_f64(out, *value);
            out.push_str("}}");
            return;
        }
    }
    if !ev.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in ev.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":", escape(k));
            match v {
                ArgValue::U64(x) => {
                    let _ = write!(out, "{x}");
                }
                ArgValue::I64(x) => {
                    let _ = write!(out, "{x}");
                }
                ArgValue::F64(x) => write_f64(out, *x),
                ArgValue::Bool(x) => {
                    let _ = write!(out, "{x}");
                }
                ArgValue::Str(s) => {
                    let _ = write!(out, "\"{}\"", escape(s));
                }
            }
        }
        out.push('}');
    }
    out.push('}');
}

/// Nanoseconds as microseconds with exactly three decimals — pure integer
/// formatting, so identical on every platform.
fn write_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        // JSON has no NaN/Inf literals; stringify rather than emit garbage.
        let _ = write!(out, "\"{v}\"");
    }
}

fn escape(s: &str) -> String {
    let mut e = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => e.push_str("\\\""),
            '\\' => e.push_str("\\\\"),
            '\n' => e.push_str("\\n"),
            '\r' => e.push_str("\\r"),
            '\t' => e.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(e, "\\u{:04x}", c as u32);
            }
            c => e.push(c),
        }
    }
    e
}

/// Minimal JSON syntax check (objects, arrays, strings, numbers, literals).
/// Exists so tests can assert exports are well-formed without a JSON
/// dependency; not a general-purpose parser.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing bytes at offset {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
    match b.get(*i) {
        Some(b'{') => {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, i);
                string(b, i)?;
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected ':' at {i}"));
                }
                *i += 1;
                skip_ws(b, i);
                value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at {i}")),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, i);
                value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at {i}")),
                }
            }
        }
        Some(b'"') => string(b, i),
        Some(b't') => literal(b, i, b"true"),
        Some(b'f') => literal(b, i, b"false"),
        Some(b'n') => literal(b, i, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
        _ => Err(format!("unexpected byte at {i}")),
    }
}

fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected '\"' at {i}"));
    }
    *i += 1;
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => *i += 2,
            _ => *i += 1,
        }
    }
    Err("unterminated string".into())
}

fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *i + lit.len() && &b[*i..*i + lit.len()] == lit {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at {i}"))
    }
}

fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    while let Some(&c) = b.get(*i) {
        if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
            *i += 1;
        } else {
            break;
        }
    }
    if *i == start {
        Err(format!("empty number at {start}"))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuffer;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.set_process_name(0, "master");
        t.set_thread_name(1, 7, "map-7");
        let mut b = TraceBuffer::new(1, 7);
        b.complete(
            "map",
            "hadoop.phase",
            1_500,
            1_002_500,
            vec![
                ("local", ArgValue::Bool(true)),
                ("bytes", ArgValue::U64(64)),
            ],
        );
        b.instant("done", "hadoop", 1_002_500);
        b.counter("maps_done", "hadoop", 1_002_500, 1.0);
        t.absorb(b);
        t.sort();
        t
    }

    #[test]
    fn export_is_valid_json_with_expected_fields() {
        let json = to_chrome_json(&sample_trace());
        validate(&json).expect("well-formed JSON");
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":1001.000"));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("map-7"));
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(
            to_chrome_json(&sample_trace()),
            to_chrome_json(&sample_trace())
        );
    }

    #[test]
    fn escaping_handles_quotes_and_control() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate("{\"a\":1}").is_ok());
        assert!(validate("{\"a\":}").is_err());
        assert!(validate("[1,2,]").is_err());
        assert!(validate("{} junk").is_err());
    }
}
