//! Adapter from `desim`'s [`SchedProbe`] hook to an obs [`Tracer`]: samples
//! scheduler queue depth and executed-event counters into the trace, and
//! mirrors totals into the metrics registry.

use crate::{names, Tracer};
use desim::{EventId, SchedProbe, SimTime};

/// Bridges [`desim::Scheduler`] events into a trace as `"desim.pending"` /
/// `"desim.executed"` counter samples (on pid 0), emitted every
/// `sample_every` executed events to keep trace volume bounded.
pub struct SchedTraceProbe {
    tracer: Tracer,
    sample_every: u64,
    scheduled: u64,
    cancelled: u64,
    executed: u64,
}

impl SchedTraceProbe {
    /// A probe sampling every `sample_every` executed events (min 1).
    pub fn new(tracer: Tracer, sample_every: u64) -> Self {
        SchedTraceProbe {
            tracer,
            sample_every: sample_every.max(1),
            scheduled: 0,
            cancelled: 0,
            executed: 0,
        }
    }

    /// Events scheduled since creation.
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Events executed since creation.
    pub fn executed(&self) -> u64 {
        self.executed
    }
}

impl SchedProbe for SchedTraceProbe {
    fn on_schedule(&mut self, _now: SimTime, _at: SimTime, _id: EventId) {
        self.scheduled += 1;
        self.tracer.metrics().inc(names::M_DESIM_SCHEDULED, 1);
    }

    fn on_cancel(&mut self, _now: SimTime, _id: EventId) {
        self.cancelled += 1;
        self.tracer.metrics().inc(names::M_DESIM_CANCELLED, 1);
    }

    fn on_execute(&mut self, at: SimTime, _id: EventId, pending: usize) {
        self.executed += 1;
        self.tracer.metrics().inc(names::M_DESIM_EXECUTED, 1);
        if self.executed.is_multiple_of(self.sample_every) {
            let ts = at.as_nanos();
            self.tracer.counter(
                0,
                names::CTR_DESIM_PENDING,
                names::CAT_DESIM,
                ts,
                pending as f64,
            );
            self.tracer.counter(
                0,
                names::CTR_DESIM_EXECUTED,
                names::CAT_DESIM,
                ts,
                self.executed as f64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::Sim;

    #[test]
    fn probe_samples_counters_into_trace() {
        let tracer = Tracer::new();
        let mut sim = Sim::new(());
        sim.scheduler()
            .set_probe(Box::new(SchedTraceProbe::new(tracer.clone(), 1)));
        for i in 1..=5u64 {
            sim.schedule(SimTime::from_nanos(i), |_, _| {});
        }
        sim.run();
        assert_eq!(tracer.metrics().counter("desim.scheduled"), 5);
        assert_eq!(tracer.metrics().counter("desim.executed"), 5);
        let trace = tracer.take_trace();
        let pendings: Vec<_> = trace
            .events()
            .iter()
            .filter(|e| e.name == "desim.pending")
            .collect();
        assert_eq!(pendings.len(), 5);
    }
}
