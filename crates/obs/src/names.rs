//! Central registry of every telemetry name the suite emits.
//!
//! Span names, counter names, metric keys, and categories used to be inline
//! string literals scattered across six crates, with nothing stopping an
//! emitter and the consumers — [`crate::analysis`]'s category tables,
//! `cargo xtask trace-diff`'s flattened keys, the committed
//! `PROFILE_BASELINE.json` — from silently drifting apart: a renamed span
//! would just zero a baseline row. Now every name lives here once, emitters
//! import the constants, and `cargo xtask analyze`'s telemetry-registry pass
//! enforces the contract statically:
//!
//! * every string literal at a telemetry call site (`complete(`, `instant(`,
//!   `counter(`, `inc(`, …) anywhere in the workspace must be a name defined
//!   in this file;
//! * every span/counter/metric name referenced by the committed
//!   `PROFILE_BASELINE.json` / `BENCH_BASELINE.json` must be defined here —
//!   deleting or renaming a constant fails `analyze` with a file:line
//!   finding instead of silently orphaning a baseline row.
//!
//! The pass reads this file at the token level (it vendors no parser), so
//! **every string literal in this module is a registered name** — do not add
//! unrelated literals here.
//!
//! Constants are grouped by role: categories (`CAT_*`), span names
//! (`SPAN_*`, `MPI_*`, `FLOW_*`), instant markers (`INST_*`, `FAULT_*`),
//! counter-event streams (`CTR_*`), and metrics-registry keys (`M_*`).
//! The `*_SPANS` / `*_CATS` tables at the bottom are the classification
//! tables [`crate::analysis`] consumes.

// --- Categories ------------------------------------------------------------

/// MPI-D data-path stage spans on the real runtime (buffer/combine/ship/…).
pub const CAT_MPID_STAGE: &str = "mpid.stage";
/// MPI-D simulated job phases (read/map/ship/reduce_tail).
pub const CAT_MPID_PHASE: &str = "mpid.phase";
/// MPI-D job-level markers (first arrival, job finished).
pub const CAT_MPID: &str = "mpid";
/// MPI-D checkpoint/restart markers.
pub const CAT_MPID_CHECKPOINT: &str = "mpid.checkpoint";
/// MPI-D data-path memory-accounting counter samples.
pub const CAT_MPID_MEM: &str = "mpid.mem";
/// MPI-D data-path worker-thread counter samples (shard workers, parallel
/// merge ranges).
pub const CAT_MPID_THREADS: &str = "mpid.threads";
/// Hadoop simulated task phases (map/copy/sort/reduce).
pub const CAT_HADOOP_PHASE: &str = "hadoop.phase";
/// Hadoop job-level spans and markers (setup, job finished).
pub const CAT_HADOOP_JOB: &str = "hadoop.job";
/// Hadoop JobTracker scheduling decisions (speculation, attempt failures).
pub const CAT_HADOOP_SCHED: &str = "hadoop.sched";
/// Hadoop job-level counter samples.
pub const CAT_HADOOP: &str = "hadoop";
/// MPI point-to-point operation spans.
pub const CAT_MPI_P2P: &str = "mpi.p2p";
/// MPI collective operation spans.
pub const CAT_MPI_COLL: &str = "mpi.coll";
/// Runtime-verification findings (deadlocks, signature mismatches, leaks).
pub const CAT_MPI_VERIFY: &str = "mpi.verify";
/// Category prefix shared by all MPI lanes; [`crate::analysis`] treats every
/// `mpi.*` span as work.
pub const CAT_MPI_PREFIX: &str = "mpi.";
/// Network-simulator job-level events (reallocation markers, flow counts).
pub const CAT_NET: &str = "net";
/// Per-flow resource-occupancy spans (the attribution timelines).
pub const CAT_NET_FLOW: &str = "net.flow";
/// Per-host link/disk utilization samples.
pub const CAT_NET_UTIL: &str = "net.util";
/// Fault-injection markers (from the `faults` plan or simulator recovery).
pub const CAT_FAULTS_INJECT: &str = "faults.inject";
/// Serving-master stream-level markers (arrivals, admissions, recoveries).
pub const CAT_SERVE: &str = "serve";
/// Per-job spans on the serving master (queue wait, execution).
pub const CAT_SERVE_JOB: &str = "serve.job";
/// Discrete-event scheduler probe samples.
pub const CAT_DESIM: &str = "desim";
/// Shuffle-strategy spans and counters (in-node combine, coded shuffle).
pub const CAT_MPID_SHUFFLE: &str = "mpid.shuffle";

// --- Span names ------------------------------------------------------------

/// Map compute (both stacks). The overlap ratio's "map" side.
pub const SPAN_MAP: &str = "map";
/// MPI-D spill shipment (sender → reducers). The overlap ratio's shuffle
/// side for MPI-D.
pub const SPAN_SHIP: &str = "ship";
/// Hadoop shuffle fetch on a reduce-task lane. The overlap ratio's shuffle
/// side for Hadoop.
pub const SPAN_COPY: &str = "copy";
/// Hadoop reduce-side merge sort.
pub const SPAN_SORT: &str = "sort";
/// Reduce compute (Hadoop phase; also the `mpi.coll` reduce op).
pub const SPAN_REDUCE: &str = "reduce";
/// Input split read.
pub const SPAN_READ: &str = "read";
/// MPI-D reducer drain after the last mapper finishes.
pub const SPAN_REDUCE_TAIL: &str = "reduce_tail";
/// Sender buffering interval between spills.
pub const SPAN_BUFFER: &str = "buffer";
/// Value folding inside a buffer interval.
pub const SPAN_COMBINE: &str = "combine";
/// Partition realignment ahead of shipment.
pub const SPAN_REALIGN: &str = "realign";
/// Receiver-side k-way merge of decoded frames.
pub const SPAN_MERGE: &str = "merge";
/// Sender flush/close (drains pending sends, ships end-of-stream).
pub const SPAN_SENDER_FINISH: &str = "sender_finish";
/// In-node leader's per-host merge of co-located mappers' spill runs.
pub const SPAN_INNODE_COMBINE: &str = "innode_combine";
/// Hadoop job setup (JobTracker scheduling latency before first task).
pub const SPAN_JOB_SETUP: &str = "job_setup";
/// A job's time in the serving master's admission queue.
pub const SPAN_SERVE_QUEUED: &str = "queued";
/// A job's execution on its granted hosts (setup through last phase).
pub const SPAN_SERVE_RUN: &str = "run";

// --- MPI operation span names (`mpi.p2p` / `mpi.coll`) ---------------------

/// Blocking standard send.
pub const MPI_SEND: &str = "send";
/// Blocking receive.
pub const MPI_RECV: &str = "recv";
/// Nonblocking send.
pub const MPI_ISEND: &str = "isend";
/// Buffered send.
pub const MPI_BSEND: &str = "bsend";
/// Barrier collective.
pub const MPI_BARRIER: &str = "barrier";
/// Broadcast collective.
pub const MPI_BCAST: &str = "bcast";
/// All-reduce collective.
pub const MPI_ALLREDUCE: &str = "allreduce";
/// Gather collective.
pub const MPI_GATHER: &str = "gather";
/// All-gather collective.
pub const MPI_ALLGATHER: &str = "allgather";
/// Scatter collective.
pub const MPI_SCATTER: &str = "scatter";
/// All-to-all collective.
pub const MPI_ALLTOALL: &str = "alltoall";
/// Reduce-scatter collective.
pub const MPI_REDUCE_SCATTER: &str = "reduce_scatter";
/// Exclusive prefix scan collective.
pub const MPI_EXSCAN: &str = "exscan";
/// Inclusive prefix scan collective.
pub const MPI_SCAN: &str = "scan";
/// Communicator split.
pub const MPI_SPLIT: &str = "split";
/// Communicator duplication.
pub const MPI_DUP: &str = "dup";

// --- `net.flow` resource-occupancy span names ------------------------------

/// Inter-host transfer (uplink + downlink occupancy).
pub const FLOW_XFER: &str = "xfer";
/// Same-host transfer (loopback resource).
pub const FLOW_LOOPBACK: &str = "loopback";
/// Local disk read.
pub const FLOW_DISK_READ: &str = "disk_read";
/// Local disk write.
pub const FLOW_DISK_WRITE: &str = "disk_write";
/// Remote read (peer disk + network).
pub const FLOW_REMOTE_READ: &str = "remote_read";

// --- Instant markers -------------------------------------------------------

/// Job completion marker (both stacks).
pub const INST_JOB_FINISHED: &str = "job_finished";
/// Checkpointed MPI-D job failure marker.
pub const INST_JOB_FAILED: &str = "job_failed";
/// First intermediate data arrival at a reducer.
pub const INST_FIRST_ARRIVAL: &str = "first_arrival";
/// Barrier checkpoint committed.
pub const INST_CHECKPOINT: &str = "checkpoint";
/// Restart from the last committed checkpoint.
pub const INST_RESTART: &str = "restart";
/// Fluid-solver rate reallocation.
pub const INST_REALLOC: &str = "realloc";
/// Flow torn down by the caller before completion.
pub const INST_FLOW_CANCELLED: &str = "flow_cancelled";
/// Flow torn down because an endpoint host died.
pub const INST_FLOW_KILLED: &str = "flow_killed";
/// Speculative duplicate task launched for a straggler.
pub const INST_SPECULATIVE_LAUNCH: &str = "speculative_launch";
/// Speculative duplicate lost the race; its work is discarded.
pub const INST_SPECULATIVE_WASTED: &str = "speculative_wasted";
/// Map attempt lost to injected task failure; rescheduled.
pub const INST_MAP_ATTEMPT_FAILED: &str = "map_attempt_failed";
/// Hadoop worker process crash (fault-injection recovery path).
pub const INST_WORKER_CRASH: &str = "worker_crash";
/// A job entered the serving master's admission queue.
pub const INST_SERVE_ARRIVAL: &str = "job_arrived";
/// The scheduler granted a queued job its hosts.
pub const INST_SERVE_ADMIT: &str = "job_admitted";
/// A running job lost a host and restarted its current phase (Hadoop-style
/// task re-execution on the survivors).
pub const INST_SERVE_PHASE_RESTART: &str = "phase_restart";
/// A running job died with a host and was re-queued from scratch
/// (MPI-style whole-job restart).
pub const INST_SERVE_JOB_RESTART: &str = "serve_job_restart";

// --- Fault-plan event labels (`faults.inject` instants) --------------------

/// Whole-node crash.
pub const FAULT_NODE_CRASH: &str = "node_crash";
/// Disk throughput degradation.
pub const FAULT_DISK_SLOWDOWN: &str = "disk_slowdown";
/// NIC throughput degradation.
pub const FAULT_NIC_DEGRADE: &str = "nic_degrade";
/// Host-pair partition begins.
pub const FAULT_LINK_PARTITION: &str = "link_partition";
/// Host-pair partition heals.
pub const FAULT_LINK_HEAL: &str = "link_heal";
/// CPU straggler (slowed compute).
pub const FAULT_STRAGGLER_CPU: &str = "straggler_cpu";

// --- Counter-event streams -------------------------------------------------

/// Prefix of the memory-accounting streams summarized under `memory` in a
/// run profile.
pub const MEM_COUNTER_PREFIX: &str = "mpid.mem.";
/// Sender arena bytes at spill time.
pub const CTR_MEM_TABLE_BYTES: &str = "mpid.mem.table_bytes";
/// Sender arena entries at spill time.
pub const CTR_MEM_TABLE_ENTRIES: &str = "mpid.mem.table_entries";
/// Cumulative sender spills.
pub const CTR_MEM_SPILLS: &str = "mpid.mem.spills";
/// Cumulative wire-pool buffer reuses.
pub const CTR_MEM_WIRE_POOL_HITS: &str = "mpid.mem.wire_pool_hits";
/// Cumulative wire-pool buffer allocations.
pub const CTR_MEM_WIRE_POOL_MISSES: &str = "mpid.mem.wire_pool_misses";
/// Receiver frame-buffer high water, bytes.
pub const CTR_MEM_FRAME_BYTES: &str = "mpid.mem.frame_bytes";
/// Frames decoded by a receiver.
pub const CTR_MEM_FRAMES_DECODED: &str = "mpid.mem.frames_decoded";
/// Bytes spilled by the receiver's external merge.
pub const CTR_MEM_SPILL_BYTES: &str = "mpid.mem.spill_bytes";
/// Block-pool bytes currently charged, sampled at spill/merge points.
pub const CTR_MEM_POOL_LIVE: &str = "mpid.mem.pool.live";
/// Block-pool lifetime high water, bytes. The bounded-memory CI gate
/// asserts this stays within the configured budget.
pub const CTR_MEM_POOL_HIGH_WATER: &str = "mpid.mem.pool.high_water";
/// Block-pool configured byte budget.
pub const CTR_MEM_POOL_BUDGET: &str = "mpid.mem.pool.budget";
/// Charges forced past the budget (irreducible buffers).
pub const CTR_MEM_POOL_FORCED: &str = "mpid.mem.pool.forced";
/// Prefix of the worker-thread counter streams.
pub const THREADS_COUNTER_PREFIX: &str = "mpid.threads.";
/// Sender shard workers attached to this rank.
pub const CTR_THREADS_WORKERS: &str = "mpid.threads.workers";
/// Record batches routed to sender shard workers.
pub const CTR_THREADS_BATCHES: &str = "mpid.threads.batches";
/// Key ranges merged in parallel by the receiver.
pub const CTR_THREADS_MERGE_RANGES: &str = "mpid.threads.merge_ranges";
/// Prefix of the per-host utilization streams summarized under
/// `utilization` in a run profile.
pub const UTIL_COUNTER_PREFIX: &str = "net.util.";
/// Uplink utilization fraction.
pub const CTR_UTIL_UP: &str = "net.util.up";
/// Downlink utilization fraction.
pub const CTR_UTIL_DOWN: &str = "net.util.down";
/// Disk utilization fraction.
pub const CTR_UTIL_DISK: &str = "net.util.disk";
/// Live flows in the fluid solver.
pub const CTR_NET_ACTIVE_FLOWS: &str = "net.active_flows";
/// Jobs waiting in the serving master's admission queue.
pub const CTR_SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";
/// Jobs concurrently running on the serving master's cluster.
pub const CTR_SERVE_RUNNING: &str = "serve.running_jobs";
/// Scheduler events pending (sampled by [`crate::SchedTraceProbe`]).
pub const CTR_DESIM_PENDING: &str = "desim.pending";
/// Scheduler events executed (sampled by [`crate::SchedTraceProbe`]).
pub const CTR_DESIM_EXECUTED: &str = "desim.executed";
/// Prefix of the shuffle-strategy counter streams.
pub const SHUFFLE_COUNTER_PREFIX: &str = "mpid.shuffle.";
/// Which shuffle strategy ran (0 = baseline, 1 = in-node, 2 = coded).
pub const CTR_SHUFFLE_STRATEGY: &str = "mpid.shuffle.strategy";
/// Wire bytes the strategy kept off the reducer-bound wire.
pub const CTR_SHUFFLE_WIRE_SAVED: &str = "mpid.shuffle.wire_bytes_saved";
/// Groups surviving a leader's per-host merge / groups entering it.
pub const CTR_SHUFFLE_COMBINE_RATIO: &str = "mpid.shuffle.combine_ratio_per_host";
/// Extra bytes spent on replication/parity (coded map-work overhead).
pub const CTR_SHUFFLE_REPL_OVERHEAD: &str = "mpid.shuffle.replication_overhead";

// --- Metrics-registry keys -------------------------------------------------

/// Hadoop maps completed (counter event stream and metric key).
pub const M_HADOOP_MAPS_DONE: &str = "hadoop.maps_done";
/// Hadoop reduces completed.
pub const M_HADOOP_REDUCES_DONE: &str = "hadoop.reduces_done";
/// Hadoop map task duration histogram, milliseconds.
pub const M_HADOOP_MAP_DURATION_MS: &str = "hadoop.map_duration_ms";
/// Bytes moved by the Hadoop shuffle.
pub const M_HADOOP_SHUFFLE_BYTES: &str = "hadoop.shuffle_bytes";
/// Hadoop workers crashed by fault injection.
pub const M_HADOOP_CRASHED_WORKERS: &str = "hadoop.crashed_workers";
/// Speculative duplicates launched.
pub const M_HADOOP_SPECULATIVE_LAUNCHED: &str = "hadoop.speculative_launched";
/// Map attempts lost to injected task failures.
pub const M_HADOOP_FAILED_MAP_ATTEMPTS: &str = "hadoop.failed_map_attempts";
/// MPI-D mappers completed (counter event stream and metric key).
pub const M_MPID_MAPPERS_DONE: &str = "mpid.mappers_done";
/// Fluid-solver rate reallocations.
pub const M_NET_REALLOCS: &str = "net.reallocs";
/// Scoped solver recomputations.
pub const M_NET_SOLVER_RECOMPUTES: &str = "net.solver.recomputes";
/// Recomputations that fell back to a full sweep.
pub const M_NET_SOLVER_FULL_RECOMPUTES: &str = "net.solver.full_recomputes";
/// Resources visited across all solver sweeps.
pub const M_NET_SOLVER_RESOURCES_SWEPT: &str = "net.solver.resources_swept";
/// Flow rate assignments written by the solver.
pub const M_NET_SOLVER_FLOWS_RERATED: &str = "net.solver.flows_rerated";
/// Flows torn down before completion.
pub const M_NET_FLOWS_CANCELLED: &str = "net.flows_cancelled";
/// Flows run to completion.
pub const M_NET_FLOWS_COMPLETED: &str = "net.flows_completed";
/// Histogram of completed-flow sizes, bytes.
pub const M_NET_FLOW_BYTES: &str = "net.flow_bytes";
/// Hosts killed by fault injection.
pub const M_NET_HOSTS_FAILED: &str = "net.hosts_failed";
/// Jobs completed by the serving master.
pub const M_SERVE_JOBS_DONE: &str = "serve.jobs_done";
/// Host-loss events a job survived by restarting its current phase.
pub const M_SERVE_JOBS_RECOVERED: &str = "serve.jobs_recovered";
/// Whole-job restarts after a fatal host loss.
pub const M_SERVE_JOB_RESTARTS: &str = "serve.job_restarts";
/// Scheduler events scheduled.
pub const M_DESIM_SCHEDULED: &str = "desim.scheduled";
/// Scheduler events cancelled.
pub const M_DESIM_CANCELLED: &str = "desim.cancelled";
/// Scheduler events executed.
pub const M_DESIM_EXECUTED: &str = "desim.executed";

// --- Classification tables consumed by `crate::analysis` -------------------

/// Categories whose complete spans represent *work* (as opposed to resource
/// occupancy like `net.flow`, or markers). `mpi.*` categories are work too,
/// via [`CAT_MPI_PREFIX`].
pub const WORK_CATS: &[&str] = &[
    CAT_MPID_PHASE,
    CAT_HADOOP_PHASE,
    CAT_MPID_STAGE,
    CAT_HADOOP_JOB,
    CAT_SERVE_JOB,
];

/// Shuffle-side span names for the map↔shuffle overlap ratio: `ship` for
/// MPI-D pipelines, `copy` for Hadoop's fetch.
pub const SHUFFLE_SPANS: &[&str] = &[SPAN_SHIP, SPAN_COPY];

/// Span names whose unexplained self time means waiting on a peer rather
/// than local computation.
pub const BLOCKS_ON_PEER_SPANS: &[&str] = &[
    SPAN_SHIP,
    SPAN_COPY,
    SPAN_MERGE,
    SPAN_REDUCE_TAIL,
    SPAN_SENDER_FINISH,
    // An in-node leader's merge waits on its members' relay streams.
    SPAN_INNODE_COMBINE,
];

/// `net.flow` span names that occupy the host's disk.
pub const DISK_FLOW_SPANS: &[&str] = &[FLOW_DISK_READ, FLOW_DISK_WRITE];

/// `net.flow` span names that occupy the host's network path.
pub const NET_FLOW_SPANS: &[&str] = &[FLOW_XFER, FLOW_REMOTE_READ, FLOW_LOOPBACK];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_tables_are_built_from_registered_names() {
        assert!(WORK_CATS.contains(&CAT_MPID_PHASE));
        assert!(WORK_CATS.contains(&CAT_SERVE_JOB));
        assert!(SHUFFLE_SPANS.contains(&SPAN_SHIP) && SHUFFLE_SPANS.contains(&SPAN_COPY));
        assert!(BLOCKS_ON_PEER_SPANS.contains(&SPAN_REDUCE_TAIL));
        for s in DISK_FLOW_SPANS {
            assert!(!NET_FLOW_SPANS.contains(s), "{s} classified as both");
        }
    }

    #[test]
    fn serve_names_extend_their_category() {
        assert!(CAT_SERVE_JOB.starts_with(CAT_SERVE));
        for c in [CTR_SERVE_QUEUE_DEPTH, CTR_SERVE_RUNNING] {
            assert!(c.starts_with(CAT_SERVE), "{c}");
        }
        for m in [
            M_SERVE_JOBS_DONE,
            M_SERVE_JOBS_RECOVERED,
            M_SERVE_JOB_RESTARTS,
        ] {
            assert!(m.starts_with(CAT_SERVE), "{m}");
        }
    }

    #[test]
    fn prefixes_are_dotted_extensions_of_their_categories() {
        assert_eq!(MEM_COUNTER_PREFIX, format!("{CAT_MPID_MEM}."));
        assert_eq!(THREADS_COUNTER_PREFIX, format!("{CAT_MPID_THREADS}."));
        assert_eq!(UTIL_COUNTER_PREFIX, format!("{CAT_NET_UTIL}."));
        assert!(CAT_MPI_P2P.starts_with(CAT_MPI_PREFIX));
        assert!(CAT_MPI_COLL.starts_with(CAT_MPI_PREFIX));
        assert!(CAT_MPI_VERIFY.starts_with(CAT_MPI_PREFIX));
    }

    #[test]
    fn counter_streams_carry_their_prefixes() {
        for c in [
            CTR_MEM_TABLE_BYTES,
            CTR_MEM_TABLE_ENTRIES,
            CTR_MEM_SPILLS,
            CTR_MEM_WIRE_POOL_HITS,
            CTR_MEM_WIRE_POOL_MISSES,
            CTR_MEM_FRAME_BYTES,
            CTR_MEM_FRAMES_DECODED,
            CTR_MEM_SPILL_BYTES,
            CTR_MEM_POOL_LIVE,
            CTR_MEM_POOL_HIGH_WATER,
            CTR_MEM_POOL_BUDGET,
            CTR_MEM_POOL_FORCED,
        ] {
            assert!(c.starts_with(MEM_COUNTER_PREFIX), "{c}");
        }
        for c in [
            CTR_THREADS_WORKERS,
            CTR_THREADS_BATCHES,
            CTR_THREADS_MERGE_RANGES,
        ] {
            assert!(c.starts_with(THREADS_COUNTER_PREFIX), "{c}");
        }
        for c in [CTR_UTIL_UP, CTR_UTIL_DOWN, CTR_UTIL_DISK] {
            assert!(c.starts_with(UTIL_COUNTER_PREFIX), "{c}");
        }
    }

    #[test]
    fn shuffle_names_extend_their_category() {
        assert_eq!(SHUFFLE_COUNTER_PREFIX, format!("{CAT_MPID_SHUFFLE}."));
        for c in [
            CTR_SHUFFLE_STRATEGY,
            CTR_SHUFFLE_WIRE_SAVED,
            CTR_SHUFFLE_COMBINE_RATIO,
            CTR_SHUFFLE_REPL_OVERHEAD,
        ] {
            assert!(c.starts_with(SHUFFLE_COUNTER_PREFIX), "{c}");
        }
        assert!(BLOCKS_ON_PEER_SPANS.contains(&SPAN_INNODE_COMBINE));
    }
}
