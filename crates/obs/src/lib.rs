//! # obs — unified tracing & metrics for the MPI-D reproduction suite
//!
//! One event model shared by every layer of the stack:
//!
//! * the simulators (`netsim`, `hadoop-sim`, `mapred::sim`) stamp events with
//!   **simulated** nanoseconds from `desim::SimTime` — traces are bit-for-bit
//!   deterministic for a given seed and job spec;
//! * the real runtime (`mpi-rt`, `mpid`) stamps events with **wall-clock**
//!   nanoseconds measured from a shared [`WallClock`] epoch.
//!
//! Events are recorded through two front-ends:
//!
//! * [`TraceBuffer`] — a plain per-actor `Vec` with a span stack. No locking,
//!   no shared state; each rank/thread/sender owns one and the owner merges
//!   them into a [`Trace`] afterwards ([`Trace::absorb`] /
//!   [`SharedTrace::absorb`]).
//! * [`Tracer`] — a cheaply cloneable `Rc<RefCell<Trace>>` handle for
//!   single-threaded simulations, where handing out one sink to every
//!   subsystem is the convenient shape.
//!
//! Exporters:
//!
//! * [`chrome::to_chrome_json`] — Chrome trace-event JSON, loadable in
//!   Perfetto / `chrome://tracing`. Timestamps are printed from integer
//!   nanoseconds only, so the export is byte-identical across runs and
//!   platforms.
//! * [`report::PhaseBreakdown`] — per-phase aggregation (count, total, mean,
//!   p50/p95/p99, share) that regenerates the shape of the paper's Table I
//!   from a trace alone.
//! * [`analysis::RunProfile`] — critical-path extraction, map↔shuffle
//!   overlap ratio, resource-wait attribution, and memory/utilization
//!   counter summaries, serialized as `mpid-profile/1` JSON for
//!   `cargo xtask trace-diff`.
//!
//! A [`metrics::Metrics`] registry (counters, gauges, log₂-bucketed
//! histograms) rides along for scalar statistics that don't need a timeline.

#![warn(missing_docs)]

pub mod analysis;
pub mod chrome;
pub mod metrics;
pub mod names;
pub mod quantile;
pub mod report;

mod probe;
pub use probe::SchedTraceProbe;

use std::borrow::Cow;
use std::cell::{Ref, RefCell, RefMut};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Event name: usually a static phase label, occasionally computed.
pub type Name = Cow<'static, str>;

/// A typed argument value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer (byte counts, ids).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (rates, ratios).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free-form string.
    Str(String),
}

/// Event kind, following the Chrome trace-event phases.
#[derive(Debug, Clone, PartialEq)]
pub enum Phase {
    /// A span with known duration (`"X"` in Chrome terms).
    Complete {
        /// Span duration in nanoseconds.
        dur_ns: u64,
    },
    /// A point-in-time marker (`"i"`).
    Instant,
    /// A sampled counter value (`"C"`).
    Counter {
        /// The counter's value at this instant.
        value: f64,
    },
}

/// One trace event. Timestamps are nanoseconds — simulated time for the
/// simulators, wall-clock-since-epoch for the real runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event name (phase label such as `"map"`, `"copy"`, `"ship"`).
    pub name: Name,
    /// Category, dot-namespaced by layer: `"hadoop.phase"`, `"net.flow"`,
    /// `"mpi.p2p"`, `"mpid.stage"`, …
    pub cat: &'static str,
    /// Start (or sample) time in nanoseconds.
    pub ts_ns: u64,
    /// Process lane — by convention a node/host id (0 = driver/master).
    pub pid: u32,
    /// Thread lane within the process — a task id, rank, or flow id.
    pub tid: u32,
    /// Kind and kind-specific payload.
    pub ph: Phase,
    /// Typed key/value arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl Event {
    /// End time for complete spans; `ts_ns` otherwise.
    pub fn end_ns(&self) -> u64 {
        match self.ph {
            Phase::Complete { dur_ns } => self.ts_ns + dur_ns,
            _ => self.ts_ns,
        }
    }
}

/// Per-actor event buffer: an append-only `Vec` plus a span stack. No locks —
/// each actor (rank thread, sender, simulator component) owns its own buffer
/// and merges it into a [`Trace`] when done.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    pid: u32,
    tid: u32,
    events: Vec<Event>,
    stack: Vec<OpenSpan>,
}

/// A span that has been entered but not yet closed: name, category, start
/// timestamp, and the args accumulated so far.
type OpenSpan = (Name, &'static str, u64, Vec<(&'static str, ArgValue)>);

impl TraceBuffer {
    /// A buffer whose events default to process `pid`, thread `tid`.
    pub fn new(pid: u32, tid: u32) -> Self {
        TraceBuffer {
            pid,
            tid,
            events: Vec::new(),
            stack: Vec::new(),
        }
    }

    /// The buffer's process lane.
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// The buffer's thread lane.
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// Open a span at `ts_ns`. Close it with [`TraceBuffer::span_end`].
    /// Spans nest: begins/ends pair up LIFO.
    pub fn span_begin(&mut self, name: impl Into<Name>, cat: &'static str, ts_ns: u64) {
        self.stack.push((name.into(), cat, ts_ns, Vec::new()));
    }

    /// Attach an argument to the innermost open span.
    ///
    /// # Panics
    /// Panics if no span is open.
    pub fn span_arg(&mut self, key: &'static str, value: ArgValue) {
        self.stack
            .last_mut()
            .expect("span_arg with no open span")
            .3
            .push((key, value));
    }

    /// Close the innermost open span at `ts_ns`, recording a complete event.
    ///
    /// # Panics
    /// Panics if no span is open or `ts_ns` precedes the span start.
    pub fn span_end(&mut self, ts_ns: u64) {
        let (name, cat, start, args) = self.stack.pop().expect("span_end with no open span");
        assert!(ts_ns >= start, "span ends before it starts");
        self.events.push(Event {
            name,
            cat,
            ts_ns: start,
            pid: self.pid,
            tid: self.tid,
            ph: Phase::Complete {
                dur_ns: ts_ns - start,
            },
            args,
        });
    }

    /// Record a complete span in one call (when both endpoints are known).
    pub fn complete(
        &mut self,
        name: impl Into<Name>,
        cat: &'static str,
        start_ns: u64,
        end_ns: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        assert!(end_ns >= start_ns, "span ends before it starts");
        self.events.push(Event {
            name: name.into(),
            cat,
            ts_ns: start_ns,
            pid: self.pid,
            tid: self.tid,
            ph: Phase::Complete {
                dur_ns: end_ns - start_ns,
            },
            args,
        });
    }

    /// Record a point-in-time marker.
    pub fn instant(&mut self, name: impl Into<Name>, cat: &'static str, ts_ns: u64) {
        self.events.push(Event {
            name: name.into(),
            cat,
            ts_ns,
            pid: self.pid,
            tid: self.tid,
            ph: Phase::Instant,
            args: Vec::new(),
        });
    }

    /// Record a counter sample.
    pub fn counter(&mut self, name: impl Into<Name>, cat: &'static str, ts_ns: u64, value: f64) {
        self.events.push(Event {
            name: name.into(),
            cat,
            ts_ns,
            pid: self.pid,
            tid: self.tid,
            ph: Phase::Counter { value },
            args: Vec::new(),
        });
    }

    /// Number of buffered events (open spans not included).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The buffered events.
    pub fn events(&self) -> &[Event] {
        &self.events
    }
}

/// A merged collection of events plus process/thread display names.
#[derive(Debug, Default)]
pub struct Trace {
    events: Vec<Event>,
    process_names: BTreeMap<u32, String>,
    thread_names: BTreeMap<(u32, u32), String>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// All events, in insertion order (see [`Trace::sort`]).
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Append one event.
    pub fn push(&mut self, ev: Event) {
        self.events.push(ev);
    }

    /// Merge a per-actor buffer into this trace.
    ///
    /// # Panics
    /// Panics if the buffer still has an open span — a leak the caller
    /// should hear about rather than silently dropping the span.
    pub fn absorb(&mut self, buf: TraceBuffer) {
        assert!(
            buf.stack.is_empty(),
            "absorbing a TraceBuffer with {} unclosed span(s)",
            buf.stack.len()
        );
        self.events.extend(buf.events);
    }

    /// Name the process lane `pid` in exported traces.
    pub fn set_process_name(&mut self, pid: u32, name: impl Into<String>) {
        self.process_names.insert(pid, name.into());
    }

    /// Name thread `tid` of process `pid` in exported traces.
    pub fn set_thread_name(&mut self, pid: u32, tid: u32, name: impl Into<String>) {
        self.thread_names.insert((pid, tid), name.into());
    }

    /// Registered process names.
    pub fn process_names(&self) -> &BTreeMap<u32, String> {
        &self.process_names
    }

    /// Registered thread names.
    pub fn thread_names(&self) -> &BTreeMap<(u32, u32), String> {
        &self.thread_names
    }

    /// Stable-sort events by `(ts, pid, tid)`. Insertion order breaks ties,
    /// which keeps exports deterministic for deterministic event streams.
    pub fn sort(&mut self) {
        self.events.sort_by_key(|e| (e.ts_ns, e.pid, e.tid));
    }

    /// Merge another trace (names from `other` win on collision).
    pub fn merge(&mut self, other: Trace) {
        self.events.extend(other.events);
        self.process_names.extend(other.process_names);
        self.thread_names.extend(other.thread_names);
    }
}

/// Cloneable single-threaded trace handle — the sink the simulators thread
/// through their call graphs. Also carries a [`metrics::Metrics`] registry.
#[derive(Clone, Default)]
pub struct Tracer {
    trace: Rc<RefCell<Trace>>,
    metrics: Rc<RefCell<metrics::Metrics>>,
}

impl Tracer {
    /// Fresh empty tracer.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Record a complete span.
    #[allow(clippy::too_many_arguments)] // mirrors the Chrome-trace "X" event field-for-field
    pub fn complete(
        &self,
        pid: u32,
        tid: u32,
        name: impl Into<Name>,
        cat: &'static str,
        start_ns: u64,
        end_ns: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        assert!(end_ns >= start_ns, "span ends before it starts");
        self.trace.borrow_mut().push(Event {
            name: name.into(),
            cat,
            ts_ns: start_ns,
            pid,
            tid,
            ph: Phase::Complete {
                dur_ns: end_ns - start_ns,
            },
            args,
        });
    }

    /// Record a point-in-time marker.
    pub fn instant(
        &self,
        pid: u32,
        tid: u32,
        name: impl Into<Name>,
        cat: &'static str,
        ts_ns: u64,
    ) {
        self.trace.borrow_mut().push(Event {
            name: name.into(),
            cat,
            ts_ns,
            pid,
            tid,
            ph: Phase::Instant,
            args: Vec::new(),
        });
    }

    /// Record a point-in-time marker with span args (e.g. a `faults.inject`
    /// event carrying the struck host and fault parameters).
    pub fn instant_args(
        &self,
        pid: u32,
        tid: u32,
        name: impl Into<Name>,
        cat: &'static str,
        ts_ns: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        self.trace.borrow_mut().push(Event {
            name: name.into(),
            cat,
            ts_ns,
            pid,
            tid,
            ph: Phase::Instant,
            args,
        });
    }

    /// Record a counter sample (on thread lane 0 of `pid`).
    pub fn counter(
        &self,
        pid: u32,
        name: impl Into<Name>,
        cat: &'static str,
        ts_ns: u64,
        value: f64,
    ) {
        self.trace.borrow_mut().push(Event {
            name: name.into(),
            cat,
            ts_ns,
            pid,
            tid: 0,
            ph: Phase::Counter { value },
            args: Vec::new(),
        });
    }

    /// Name a process lane.
    pub fn set_process_name(&self, pid: u32, name: impl Into<String>) {
        self.trace.borrow_mut().set_process_name(pid, name);
    }

    /// Name a thread lane.
    pub fn set_thread_name(&self, pid: u32, tid: u32, name: impl Into<String>) {
        self.trace.borrow_mut().set_thread_name(pid, tid, name);
    }

    /// Merge a per-actor buffer.
    pub fn absorb(&self, buf: TraceBuffer) {
        self.trace.borrow_mut().absorb(buf);
    }

    /// Shared metrics registry.
    pub fn metrics(&self) -> RefMut<'_, metrics::Metrics> {
        self.metrics.borrow_mut()
    }

    /// Read access to the underlying trace.
    pub fn trace(&self) -> Ref<'_, Trace> {
        self.trace.borrow()
    }

    /// Extract the trace, leaving this handle empty. Events are sorted.
    pub fn take_trace(&self) -> Trace {
        let mut t = std::mem::take(&mut *self.trace.borrow_mut());
        t.sort();
        t
    }

    /// Export the current events as Chrome trace JSON (sorted, deterministic).
    pub fn chrome_json(&self) -> String {
        let mut snapshot = Trace {
            events: self.trace.borrow().events.to_vec(),
            process_names: self.trace.borrow().process_names.clone(),
            thread_names: self.trace.borrow().thread_names.clone(),
        };
        snapshot.sort();
        chrome::to_chrome_json(&snapshot)
    }
}

/// Thread-safe trace collector for the real (multi-threaded) runtime: rank
/// threads record into private [`TraceBuffer`]s and merge them here when they
/// finish — the mutex is taken once per actor, not per event.
#[derive(Clone, Default)]
pub struct SharedTrace {
    inner: Arc<Mutex<Trace>>,
}

impl SharedTrace {
    /// Fresh empty collector.
    pub fn new() -> Self {
        SharedTrace::default()
    }

    /// Merge a finished per-actor buffer.
    pub fn absorb(&self, buf: TraceBuffer) {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .absorb(buf);
    }

    /// Name a process lane.
    pub fn set_process_name(&self, pid: u32, name: impl Into<String>) {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .set_process_name(pid, name);
    }

    /// Name a thread lane.
    pub fn set_thread_name(&self, pid: u32, tid: u32, name: impl Into<String>) {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .set_thread_name(pid, tid, name);
    }

    /// Extract the merged trace (sorted).
    pub fn take_trace(&self) -> Trace {
        let mut t = std::mem::take(
            &mut *self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        t.sort();
        t
    }
}

/// Wall-clock epoch for the real runtime: all threads stamp events with
/// nanoseconds since the same `Instant`, so their lanes line up.
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// Epoch = now.
    pub fn start() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_spans_nest_lifo() {
        let mut b = TraceBuffer::new(1, 2);
        b.span_begin("outer", "t", 100);
        b.span_begin("inner", "t", 150);
        b.span_arg("bytes", ArgValue::U64(7));
        b.span_end(180);
        b.span_end(300);
        assert_eq!(b.len(), 2);
        assert_eq!(b.events()[0].name, "inner");
        assert_eq!(b.events()[0].ph, Phase::Complete { dur_ns: 30 });
        assert_eq!(b.events()[0].args, vec![("bytes", ArgValue::U64(7))]);
        assert_eq!(b.events()[1].name, "outer");
        assert_eq!(b.events()[1].end_ns(), 300);
    }

    #[test]
    #[should_panic(expected = "unclosed span")]
    fn absorbing_open_span_panics() {
        let mut b = TraceBuffer::new(0, 0);
        b.span_begin("leak", "t", 1);
        Trace::new().absorb(b);
    }

    #[test]
    fn trace_sort_is_stable_by_time_pid_tid() {
        let mut t = Trace::new();
        for (ts, pid, tid) in [(5u64, 1u32, 1u32), (5, 0, 2), (1, 9, 9), (5, 0, 1)] {
            t.push(Event {
                name: "e".into(),
                cat: "t",
                ts_ns: ts,
                pid,
                tid,
                ph: Phase::Instant,
                args: vec![],
            });
        }
        t.sort();
        let order: Vec<_> = t.events().iter().map(|e| (e.ts_ns, e.pid, e.tid)).collect();
        assert_eq!(order, vec![(1, 9, 9), (5, 0, 1), (5, 0, 2), (5, 1, 1)]);
    }

    #[test]
    fn tracer_collects_and_takes() {
        let tr = Tracer::new();
        let clone = tr.clone();
        clone.complete(0, 1, "map", "phase", 10, 20, vec![]);
        tr.instant(0, 1, "done", "phase", 20);
        tr.metrics().inc("maps_done", 1);
        let trace = tr.take_trace();
        assert_eq!(trace.events().len(), 2);
        assert!(tr.trace().events().is_empty(), "take_trace drains");
    }

    #[test]
    fn shared_trace_merges_across_threads() {
        let shared = SharedTrace::new();
        let mut handles = vec![];
        for rank in 0..4u32 {
            let s = shared.clone();
            handles.push(std::thread::spawn(move || {
                let mut b = TraceBuffer::new(0, rank);
                b.complete(
                    "work",
                    "mpi",
                    rank as u64 * 10,
                    rank as u64 * 10 + 5,
                    vec![],
                );
                s.absorb(b);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let t = shared.take_trace();
        assert_eq!(t.events().len(), 4);
    }
}
