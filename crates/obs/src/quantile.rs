//! Shared nearest-rank quantile arithmetic.
//!
//! Two consumers used to carry private copies of the same formula:
//! [`crate::report::PhaseBreakdown`] (exact percentiles over sorted
//! duration vectors) and [`crate::metrics::Histogram`] (estimated
//! percentiles over log₂ buckets). Both now resolve a quantile to the
//! same sample rank through [`nearest_rank`], so an exact summary and a
//! histogram estimate of the same data always point at the same sample —
//! the histogram merely blurs its *value* to the bucket midpoint.

/// Rank of the `q`-quantile (`0.0..=1.0`) among `n` ordered samples,
/// by the nearest-rank rule `round(q * (n - 1))`.
///
/// Returns 0 for an empty population; clamps `q` into `[0, 1]` so a
/// sloppy caller can never index past the end.
pub fn nearest_rank(n: u64, q: f64) -> u64 {
    if n == 0 {
        return 0;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = (q * (n as f64 - 1.0)).round() as u64;
    rank.min(n - 1)
}

/// Exact `q`-quantile of an ascending-sorted slice by nearest rank.
/// Returns 0 for an empty slice.
pub fn percentile_sorted(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[nearest_rank(sorted.len() as u64, q) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_endpoints_and_clamping() {
        assert_eq!(nearest_rank(0, 0.5), 0);
        assert_eq!(nearest_rank(1, 0.99), 0);
        assert_eq!(nearest_rank(100, 0.0), 0);
        assert_eq!(nearest_rank(100, 1.0), 99);
        assert_eq!(nearest_rank(100, 2.0), 99, "q clamped above");
        assert_eq!(nearest_rank(100, -1.0), 0, "q clamped below");
    }

    #[test]
    fn percentile_matches_hand_computation() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_sorted(&v, 0.0), 1);
        assert_eq!(percentile_sorted(&v, 0.5), 51); // round(0.5 * 99) = 50
        assert_eq!(percentile_sorted(&v, 1.0), 100);
        assert_eq!(percentile_sorted(&[], 0.5), 0);
        assert_eq!(percentile_sorted(&[7], 0.95), 7);
    }
}
