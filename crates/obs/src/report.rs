//! Per-phase breakdown report: regenerates the shape of the paper's Table I
//! ("Hadoop reduce task phase breakdown") from a trace alone — no access to
//! the simulator's internal reports, just the complete spans it emitted.

use crate::quantile::percentile_sorted as percentile;
use crate::{Phase, Trace};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregated statistics for one phase (one span name).
#[derive(Debug, Clone)]
pub struct PhaseRow {
    /// Span name (e.g. `"map"`, `"copy"`, `"sort"`, `"reduce"`).
    pub name: String,
    /// Number of spans.
    pub count: usize,
    /// Sum of span durations, ns.
    pub total_ns: u64,
    /// Mean span duration, ns.
    pub mean_ns: u64,
    /// Exact 50th-percentile duration, ns.
    pub p50_ns: u64,
    /// Exact 95th-percentile duration, ns.
    pub p95_ns: u64,
    /// Exact 99th-percentile duration, ns.
    pub p99_ns: u64,
    /// This phase's share of the summed duration of *all* rows in the
    /// breakdown, in `[0, 1]`.
    pub share: f64,
}

/// A per-phase aggregation over the complete spans of a trace.
#[derive(Debug, Clone, Default)]
pub struct PhaseBreakdown {
    /// Rows, sorted by descending total duration (name breaks ties).
    pub rows: Vec<PhaseRow>,
    /// Wall-clock extent of the selected spans (max end − min start), ns.
    pub wall_ns: u64,
}

impl PhaseBreakdown {
    /// Aggregate every complete span whose category starts with
    /// `cat_prefix` (empty prefix = all complete spans), grouped by name.
    pub fn from_trace(trace: &Trace, cat_prefix: &str) -> Self {
        let mut durs: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
        let mut min_start = u64::MAX;
        let mut max_end = 0u64;
        for ev in trace.events() {
            if let Phase::Complete { dur_ns } = ev.ph {
                if ev.cat.starts_with(cat_prefix) {
                    durs.entry(&ev.name).or_default().push(dur_ns);
                    min_start = min_start.min(ev.ts_ns);
                    max_end = max_end.max(ev.ts_ns + dur_ns);
                }
            }
        }
        let grand_total: u64 = durs.values().flatten().sum();
        let mut rows: Vec<PhaseRow> = durs
            .into_iter()
            .map(|(name, mut d)| {
                d.sort_unstable();
                let total: u64 = d.iter().sum();
                PhaseRow {
                    name: name.to_string(),
                    count: d.len(),
                    total_ns: total,
                    mean_ns: total / d.len() as u64,
                    p50_ns: percentile(&d, 0.50),
                    p95_ns: percentile(&d, 0.95),
                    p99_ns: percentile(&d, 0.99),
                    share: if grand_total == 0 {
                        0.0
                    } else {
                        total as f64 / grand_total as f64
                    },
                }
            })
            .collect();
        rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        PhaseBreakdown {
            rows,
            wall_ns: max_end.saturating_sub(min_start),
        }
    }

    /// The row for `name`, if present.
    pub fn row(&self, name: &str) -> Option<&PhaseRow> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// `name`'s share of total phase time (0 if absent).
    pub fn share_of(&self, name: &str) -> f64 {
        self.row(name).map_or(0.0, |r| r.share)
    }

    /// The dominant phase (largest total), if any spans were aggregated.
    pub fn dominant(&self) -> Option<&PhaseRow> {
        self.rows.first()
    }

    /// Deterministic plain-text table in the shape of the paper's Table I:
    /// one row per phase with count, total/mean/percentile durations in
    /// seconds, and the phase's share of total time.
    pub fn render(&self, title: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== Phase breakdown: {title} ==");
        let _ = writeln!(
            out,
            "{:<12} {:>6} {:>12} {:>10} {:>10} {:>10} {:>10} {:>7}",
            "phase", "count", "total(s)", "mean(s)", "p50(s)", "p95(s)", "p99(s)", "share"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<12} {:>6} {:>12.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>6.1}%",
                r.name,
                r.count,
                secs(r.total_ns),
                secs(r.mean_ns),
                secs(r.p50_ns),
                secs(r.p95_ns),
                secs(r.p99_ns),
                r.share * 100.0
            );
        }
        let _ = writeln!(
            out,
            "({} phases, wall extent {:.3} s)",
            self.rows.len(),
            secs(self.wall_ns)
        );
        out
    }
}

fn secs(ns: u64) -> f64 {
    ns as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuffer;

    fn trace_with_phases() -> Trace {
        let mut t = Trace::new();
        let mut b = TraceBuffer::new(1, 1);
        // copy dominates, like Table I.
        for i in 0..4u64 {
            b.complete("copy", "hadoop.phase", i * 100, i * 100 + 60, vec![]);
            b.complete("sort", "hadoop.phase", i * 100 + 60, i * 100 + 70, vec![]);
            b.complete("reduce", "hadoop.phase", i * 100 + 70, i * 100 + 90, vec![]);
        }
        b.complete("other", "net.flow", 0, 1_000_000, vec![]);
        t.absorb(b);
        t.sort();
        t
    }

    #[test]
    fn aggregates_by_name_within_category() {
        let bd = PhaseBreakdown::from_trace(&trace_with_phases(), "hadoop.");
        assert_eq!(bd.rows.len(), 3, "net.flow span filtered out");
        let copy = bd.row("copy").unwrap();
        assert_eq!(copy.count, 4);
        assert_eq!(copy.total_ns, 240);
        assert_eq!(copy.mean_ns, 60);
        assert!(bd.share_of("copy") > 0.5, "copy dominates");
        assert_eq!(bd.dominant().unwrap().name, "copy");
        let total_share: f64 = bd.rows.iter().map(|r| r.share).sum();
        assert!((total_share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn render_shape_and_determinism() {
        let bd = PhaseBreakdown::from_trace(&trace_with_phases(), "hadoop.");
        let r = bd.render("test job");
        assert!(r.starts_with("== Phase breakdown: test job =="));
        assert!(r.contains("copy"));
        assert!(r.contains("share"));
        assert_eq!(r, bd.render("test job"));
        // copy row comes first (largest total).
        assert!(r.find("copy").unwrap() < r.find("sort").unwrap());
    }

    #[test]
    fn empty_trace_is_fine() {
        let bd = PhaseBreakdown::from_trace(&Trace::new(), "");
        assert!(bd.rows.is_empty());
        assert_eq!(bd.wall_ns, 0);
        assert!(bd.dominant().is_none());
    }
}
