//! Post-run trace analysis: turns a finished [`Trace`] into a structured
//! [`RunProfile`] answering the questions bench numbers can't — *where* the
//! time went, not just how much there was.
//!
//! A profile has four parts:
//!
//! * **Critical path** — the longest chain of causally-ordered work spans
//!   (span B can follow span A iff A ends no later than B starts), found by
//!   weighted-interval dynamic programming over the span DAG. Its length
//!   bounds the run from below: no scheduling change shortens the run past
//!   the critical path without shortening a segment on it.
//! * **Overlap ratio** — `|map ∩ shuffle| / |shuffle|` over the interval
//!   unions of map spans and shuffle spans (`ship` for MPI-D, `copy` for
//!   Hadoop). This is the paper's headline mechanism measured directly:
//!   MPI-D pipelines shuffle under map and scores near 1, stock Hadoop's
//!   copy tail extends past map-finish and scores lower.
//! * **Resource-wait attribution** — every work span's *self*-time (its
//!   duration minus nested child spans on the same lane) is split into
//!   disk / network / blocked-on-peer / compute by intersecting it with the
//!   per-host `net.flow` occupancy timelines the simulators emit.
//! * **Counter summaries** — high-water and final values for `mpid.mem.*`
//!   (sender arena, wire pool, receiver frames, spill bytes) and
//!   `net.util.*` (per-host link/disk utilization samples), plus any scalar
//!   counters from an accompanying [`Metrics`] registry.
//!
//! Profiles serialize to a hand-rolled, byte-deterministic JSON document
//! (schema `mpid-profile/1`) consumed by `cargo xtask trace-diff`.

use crate::metrics::Metrics;
use crate::{names, Phase, Trace};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Span categories that represent *work* (as opposed to resource occupancy
/// like `net.flow`, or markers like `faults.inject`). The tables live in
/// [`crate::names`], next to the constants the emitters use.
fn is_work_cat(cat: &str) -> bool {
    names::WORK_CATS.contains(&cat) || cat.starts_with(names::CAT_MPI_PREFIX)
}

/// One span on the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathSegment {
    /// Span name (`"map"`, `"ship"`, `"copy"`, …).
    pub name: String,
    /// Span category (`"mpid.phase"`, `"hadoop.phase"`, …).
    pub cat: &'static str,
    /// Host/process lane of the span.
    pub pid: u32,
    /// Thread lane of the span.
    pub tid: u32,
    /// Start time, ns.
    pub start_ns: u64,
    /// Duration, ns.
    pub dur_ns: u64,
}

/// Time attributed to one `category/name` group along the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoryShare {
    /// Group key, `"<cat>/<name>"` (e.g. `"mpid.phase/ship"`).
    pub key: String,
    /// Summed critical-path time in this group, ns.
    pub ns: u64,
    /// Fraction of the critical-path total in `[0, 1]`.
    pub share: f64,
}

/// The longest causally-ordered chain of work spans.
#[derive(Debug, Clone, Default)]
pub struct CriticalPath {
    /// Summed duration of the chain, ns.
    pub total_ns: u64,
    /// `total_ns / wall_ns` — how much of the run the chain explains.
    pub coverage: f64,
    /// Chain spans in time order.
    pub segments: Vec<PathSegment>,
    /// Chain time grouped by `"<cat>/<name>"`, descending by time
    /// (key breaks ties).
    pub by_category: Vec<CategoryShare>,
}

/// Interval-union overlap between map compute and shuffle data movement,
/// measured per `(pid, tid)` lane: a shuffle span only counts as
/// overlapped where it intersects map spans on its *own* lane (the
/// producing worker). This captures the paper's producer-side pipelining
/// rather than mere job-level concurrency.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OverlapStats {
    /// Total time covered by at least one map span, ns.
    pub map_ns: u64,
    /// Total time covered by at least one shuffle span (`ship`/`copy`), ns.
    pub shuffle_ns: u64,
    /// Time covered by both at once, ns.
    pub overlap_ns: u64,
    /// `overlap_ns / shuffle_ns` (0 when no shuffle spans exist).
    pub ratio: f64,
}

/// Self-time of all spans sharing a name, classified by what the host's
/// resources were doing underneath.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionRow {
    /// Span name.
    pub name: String,
    /// Number of spans.
    pub count: usize,
    /// Raw span time (children included), ns.
    pub span_ns: u64,
    /// Self time (children on the same lane subtracted), ns.
    pub self_ns: u64,
    /// Self time overlapping a disk flow on the span's host, ns.
    pub disk_ns: u64,
    /// Self time overlapping a network flow (and no disk flow), ns.
    pub network_ns: u64,
    /// Unexplained self time of a data-movement phase — waiting on a peer, ns.
    pub blocked_ns: u64,
    /// Remaining self time: local computation, ns.
    pub compute_ns: u64,
}

/// Summary of one counter-event stream family (same name, any lane).
#[derive(Debug, Clone, PartialEq)]
pub struct CounterStat {
    /// Counter name (e.g. `"mpid.mem.table_bytes"`, `"net.util.up"`).
    pub name: String,
    /// Number of samples across all lanes.
    pub samples: usize,
    /// Largest sampled value — the high-water mark.
    pub max: f64,
    /// Mean of all samples.
    pub mean: f64,
    /// Sum over lanes of each lane's final sample — the natural total for
    /// per-rank monotonic counters (spill counts, frames decoded).
    pub last_sum: f64,
}

/// A structured performance profile of one run, built from its trace.
#[derive(Debug, Clone, Default)]
pub struct RunProfile {
    /// Caller-supplied label (bench name, figure id).
    pub label: String,
    /// Wall extent of the work spans (max end − min start), ns.
    pub wall_ns: u64,
    /// Map↔shuffle overlap, the paper's mechanism.
    pub overlap: OverlapStats,
    /// Longest causally-ordered span chain.
    pub critical_path: CriticalPath,
    /// Per-phase resource-wait attribution, descending by self time.
    pub attribution: Vec<AttributionRow>,
    /// `mpid.mem.*` counter summaries (memory accounting), by name.
    pub memory: Vec<CounterStat>,
    /// `net.util.*` counter summaries (link/disk utilization), by name.
    pub utilization: Vec<CounterStat>,
    /// Scalar counters carried over from the run's [`Metrics`] registry.
    pub counters: BTreeMap<String, u64>,
}

/// Half-open interval `[start, end)` in ns.
type Iv = (u64, u64);

/// Merge a list of intervals into a sorted disjoint union.
fn union(mut ivs: Vec<Iv>) -> Vec<Iv> {
    ivs.retain(|&(s, e)| e > s);
    ivs.sort_unstable();
    let mut out: Vec<Iv> = Vec::with_capacity(ivs.len());
    for (s, e) in ivs {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Total length of a disjoint sorted union.
fn total_len(u: &[Iv]) -> u64 {
    u.iter().map(|&(s, e)| e - s).sum()
}

/// Intersection of two disjoint sorted unions.
fn intersect(a: &[Iv], b: &[Iv]) -> Vec<Iv> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let s = a[i].0.max(b[j].0);
        let e = a[i].1.min(b[j].1);
        if e > s {
            out.push((s, e));
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// `a` minus `b`, both disjoint sorted unions.
fn subtract(a: &[Iv], b: &[Iv]) -> Vec<Iv> {
    let mut out = Vec::new();
    let mut j = 0;
    for &(mut s, e) in a {
        while j < b.len() && b[j].1 <= s {
            j += 1;
        }
        let mut k = j;
        while s < e {
            if k >= b.len() || b[k].0 >= e {
                out.push((s, e));
                break;
            }
            if b[k].0 > s {
                out.push((s, b[k].0));
            }
            s = s.max(b[k].1);
            k += 1;
        }
    }
    out
}

impl RunProfile {
    /// Build a profile from a finished trace and (optionally) the scalar
    /// metrics registry that rode along with it.
    ///
    /// Every derived quantity is a pure function of the event stream, so a
    /// deterministic trace (fixed-seed simulation) yields a byte-identical
    /// profile — the property the golden tests and `trace-diff` lean on.
    pub fn build(trace: &Trace, metrics: Option<&Metrics>, label: &str) -> RunProfile {
        let mut work: Vec<&crate::Event> = Vec::new();
        // Per-host resource occupancy from net.flow spans.
        let mut disk_ivs: BTreeMap<u32, Vec<Iv>> = BTreeMap::new();
        let mut net_ivs: BTreeMap<u32, Vec<Iv>> = BTreeMap::new();
        // Counter streams keyed by (name, pid, tid); per-stream samples in
        // trace order (Trace::sort keeps streams time-ordered).
        let mut streams: BTreeMap<(String, u32, u32), Vec<f64>> = BTreeMap::new();

        for ev in trace.events() {
            match ev.ph {
                Phase::Complete { dur_ns } => {
                    if is_work_cat(ev.cat) {
                        work.push(ev);
                    } else if ev.cat == names::CAT_NET_FLOW {
                        let iv = (ev.ts_ns, ev.ts_ns + dur_ns);
                        let name = ev.name.as_ref();
                        if names::DISK_FLOW_SPANS.contains(&name) {
                            disk_ivs.entry(ev.pid).or_default().push(iv)
                        } else if names::NET_FLOW_SPANS.contains(&name) {
                            net_ivs.entry(ev.pid).or_default().push(iv)
                        }
                    }
                }
                Phase::Counter { value } => {
                    let name = ev.name.as_ref();
                    if name.starts_with(names::MEM_COUNTER_PREFIX)
                        || name.starts_with(names::UTIL_COUNTER_PREFIX)
                    {
                        streams
                            .entry((name.to_string(), ev.pid, ev.tid))
                            .or_default()
                            .push(value);
                    }
                }
                Phase::Instant => {}
            }
        }

        let wall_ns = {
            let min = work.iter().map(|e| e.ts_ns).min().unwrap_or(0);
            let max = work.iter().map(|e| e.end_ns()).max().unwrap_or(0);
            max.saturating_sub(min)
        };

        let disk: BTreeMap<u32, Vec<Iv>> =
            disk_ivs.into_iter().map(|(h, v)| (h, union(v))).collect();
        let net_only: BTreeMap<u32, Vec<Iv>> = net_ivs
            .into_iter()
            .map(|(h, v)| {
                let u = union(v);
                let d = disk.get(&h).map(Vec::as_slice).unwrap_or(&[]);
                (h, subtract(&u, d))
            })
            .collect();

        RunProfile {
            label: label.to_string(),
            wall_ns,
            overlap: overlap_stats(&work),
            critical_path: critical_path(&work, wall_ns),
            attribution: attribute(&work, &disk, &net_only),
            memory: counter_stats(&streams, names::MEM_COUNTER_PREFIX),
            utilization: counter_stats(&streams, names::UTIL_COUNTER_PREFIX),
            counters: metrics
                .map(|m| {
                    m.counters()
                        .map(|(k, v)| (k.to_string(), v))
                        .collect::<BTreeMap<_, _>>()
                })
                .unwrap_or_default(),
        }
    }

    /// The top `n` critical-path category groups, largest first.
    pub fn top_segments(&self, n: usize) -> &[CategoryShare] {
        &self.critical_path.by_category[..n.min(self.critical_path.by_category.len())]
    }

    /// Serialize as byte-deterministic `mpid-profile/1` JSON.
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(4096);
        o.push_str("{\n  \"schema\": \"mpid-profile/1\",\n");
        let _ = writeln!(o, "  \"label\": {},", json_str(&self.label));
        let _ = writeln!(o, "  \"wall_ns\": {},", self.wall_ns);
        let ov = &self.overlap;
        let _ = writeln!(
            o,
            "  \"overlap\": {{\"map_ns\": {}, \"shuffle_ns\": {}, \"overlap_ns\": {}, \"ratio\": {}}},",
            ov.map_ns,
            ov.shuffle_ns,
            ov.overlap_ns,
            json_f64(ov.ratio)
        );
        let cp = &self.critical_path;
        o.push_str("  \"critical_path\": {\n");
        let _ = writeln!(o, "    \"total_ns\": {},", cp.total_ns);
        let _ = writeln!(o, "    \"coverage\": {},", json_f64(cp.coverage));
        o.push_str("    \"segments\": [");
        for (i, s) in cp.segments.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                o,
                "{sep}      {{\"name\": {}, \"cat\": {}, \"pid\": {}, \"tid\": {}, \"start_ns\": {}, \"dur_ns\": {}}}",
                json_str(&s.name),
                json_str(s.cat),
                s.pid,
                s.tid,
                s.start_ns,
                s.dur_ns
            );
        }
        o.push_str(if cp.segments.is_empty() {
            "],\n"
        } else {
            "\n    ],\n"
        });
        o.push_str("    \"by_category\": [");
        for (i, c) in cp.by_category.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                o,
                "{sep}      {{\"key\": {}, \"ns\": {}, \"share\": {}}}",
                json_str(&c.key),
                c.ns,
                json_f64(c.share)
            );
        }
        o.push_str(if cp.by_category.is_empty() {
            "]\n"
        } else {
            "\n    ]\n"
        });
        o.push_str("  },\n");
        o.push_str("  \"attribution\": [");
        for (i, r) in self.attribution.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                o,
                "{sep}    {{\"name\": {}, \"count\": {}, \"span_ns\": {}, \"self_ns\": {}, \"disk_ns\": {}, \"network_ns\": {}, \"blocked_ns\": {}, \"compute_ns\": {}}}",
                json_str(&r.name),
                r.count,
                r.span_ns,
                r.self_ns,
                r.disk_ns,
                r.network_ns,
                r.blocked_ns,
                r.compute_ns
            );
        }
        o.push_str(if self.attribution.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        for (field, stats, comma) in [
            ("memory", &self.memory, ","),
            ("utilization", &self.utilization, ","),
        ] {
            let _ = write!(o, "  \"{field}\": [");
            for (i, c) in stats.iter().enumerate() {
                let sep = if i == 0 { "\n" } else { ",\n" };
                let _ = write!(
                    o,
                    "{sep}    {{\"name\": {}, \"samples\": {}, \"max\": {}, \"mean\": {}, \"last_sum\": {}}}",
                    json_str(&c.name),
                    c.samples,
                    json_f64(c.max),
                    json_f64(c.mean),
                    json_f64(c.last_sum)
                );
            }
            let close = if stats.is_empty() { "]" } else { "\n  ]" };
            let _ = writeln!(o, "{close}{comma}");
        }
        o.push_str("  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(o, "{sep}    {}: {}", json_str(k), v);
        }
        o.push_str(if self.counters.is_empty() {
            "}\n"
        } else {
            "\n  }\n"
        });
        o.push_str("}\n");
        o
    }

    /// Deterministic plain-text rendering: overlap line, critical-path
    /// category table, attribution table, memory/utilization summaries.
    pub fn render(&self) -> String {
        let s = |ns: u64| ns as f64 / 1e9;
        let mut out = String::new();
        let _ = writeln!(out, "== Run profile: {} ==", self.label);
        let _ = writeln!(
            out,
            "wall {:.3} s; critical path {:.3} s ({:.1}% coverage, {} segments)",
            s(self.wall_ns),
            s(self.critical_path.total_ns),
            self.critical_path.coverage * 100.0,
            self.critical_path.segments.len()
        );
        let _ = writeln!(
            out,
            "map<->shuffle overlap ratio: {:.3} (map {:.3} s, shuffle {:.3} s, overlap {:.3} s)",
            self.overlap.ratio,
            s(self.overlap.map_ns),
            s(self.overlap.shuffle_ns),
            s(self.overlap.overlap_ns)
        );
        if !self.critical_path.by_category.is_empty() {
            out.push_str("critical path by category:\n");
            for c in &self.critical_path.by_category {
                let _ = writeln!(
                    out,
                    "  {:<28} {:>10.3} s {:>6.1}%",
                    c.key,
                    s(c.ns),
                    c.share * 100.0
                );
            }
        }
        if !self.attribution.is_empty() {
            let _ = writeln!(
                out,
                "resource-wait attribution (self time):\n  {:<14} {:>5} {:>9} {:>9} {:>9} {:>9} {:>9}",
                "phase", "count", "self(s)", "compute", "disk", "network", "blocked"
            );
            for r in &self.attribution {
                let _ = writeln!(
                    out,
                    "  {:<14} {:>5} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
                    r.name,
                    r.count,
                    s(r.self_ns),
                    s(r.compute_ns),
                    s(r.disk_ns),
                    s(r.network_ns),
                    s(r.blocked_ns)
                );
            }
        }
        if !self.memory.is_empty() {
            out.push_str("memory high-water:\n");
            for c in &self.memory {
                let _ = writeln!(
                    out,
                    "  {:<28} max={:.0} last_sum={:.0} samples={}",
                    c.name, c.max, c.last_sum, c.samples
                );
            }
        }
        if !self.utilization.is_empty() {
            out.push_str("utilization (sampled):\n");
            for c in &self.utilization {
                let _ = writeln!(
                    out,
                    "  {:<28} mean={:.3} max={:.3} samples={}",
                    c.name, c.mean, c.max, c.samples
                );
            }
        }
        out
    }
}

/// JSON string literal with the escapes our names can contain.
fn json_str(s: &str) -> String {
    let mut o = String::with_capacity(s.len() + 2);
    o.push('"');
    for c in s.chars() {
        match c {
            '"' => o.push_str("\\\""),
            '\\' => o.push_str("\\\\"),
            '\n' => o.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(o, "\\u{:04x}", c as u32);
            }
            c => o.push(c),
        }
    }
    o.push('"');
    o
}

/// Fixed-precision float so the document is byte-stable.
fn json_f64(v: f64) -> String {
    // `+ 0.0` folds IEEE negative zero (e.g. an all-zero utilization
    // stream's max) into plain `0.000000`.
    format!("{:.6}", v + 0.0)
}

/// Longest chain of causally-ordered spans by weighted-interval DP.
///
/// Spans are sorted by `(end, start, pid, tid, name)`; `dp[i]` is the best
/// chain ending at span `i`, found by binary-searching the last span that
/// ends at or before `start[i]` and reading a running prefix-argmax. Ties
/// resolve to the earliest index at every step, so the chain is a pure
/// function of the (sorted) event stream.
fn critical_path(work: &[&crate::Event], wall_ns: u64) -> CriticalPath {
    if work.is_empty() {
        return CriticalPath::default();
    }
    let mut idx: Vec<usize> = (0..work.len()).collect();
    idx.sort_by(|&a, &b| {
        let (ea, eb) = (work[a], work[b]);
        (ea.end_ns(), ea.ts_ns, ea.pid, ea.tid, ea.name.as_ref()).cmp(&(
            eb.end_ns(),
            eb.ts_ns,
            eb.pid,
            eb.tid,
            eb.name.as_ref(),
        ))
    });
    let ends: Vec<u64> = idx.iter().map(|&i| work[i].end_ns()).collect();
    let n = idx.len();
    let mut dp = vec![0u64; n];
    let mut pred: Vec<Option<usize>> = vec![None; n];
    // best_upto[i] = index (into the sorted order) with the largest dp among
    // 0..=i, earliest on ties.
    let mut best_upto = vec![0usize; n];
    for i in 0..n {
        let ev = work[idx[i]];
        let dur = ev.end_ns() - ev.ts_ns;
        // Last j with ends[j] <= ev.ts_ns.
        let j = ends.partition_point(|&e| e <= ev.ts_ns);
        let (base, from) = if j == 0 {
            (0, None)
        } else {
            let b = best_upto[j - 1];
            (dp[b], Some(b))
        };
        dp[i] = base + dur;
        pred[i] = if base > 0 { from } else { None };
        best_upto[i] = if i == 0 {
            0
        } else if dp[i] > dp[best_upto[i - 1]] {
            i
        } else {
            best_upto[i - 1]
        };
    }
    // Walk back from the global best chain end.
    let mut cur = Some(best_upto[n - 1]);
    let mut chain: Vec<usize> = Vec::new();
    while let Some(i) = cur {
        chain.push(idx[i]);
        cur = pred[i];
    }
    chain.reverse();

    let segments: Vec<PathSegment> = chain
        .iter()
        .map(|&i| {
            let e = work[i];
            PathSegment {
                name: e.name.to_string(),
                cat: e.cat,
                pid: e.pid,
                tid: e.tid,
                start_ns: e.ts_ns,
                dur_ns: e.end_ns() - e.ts_ns,
            }
        })
        .collect();
    let total_ns: u64 = segments.iter().map(|s| s.dur_ns).sum();
    let mut by_cat: BTreeMap<String, u64> = BTreeMap::new();
    for s in &segments {
        *by_cat.entry(format!("{}/{}", s.cat, s.name)).or_insert(0) += s.dur_ns;
    }
    let mut by_category: Vec<CategoryShare> = by_cat
        .into_iter()
        .map(|(key, ns)| CategoryShare {
            key,
            ns,
            share: if total_ns == 0 {
                0.0
            } else {
                ns as f64 / total_ns as f64
            },
        })
        .collect();
    by_category.sort_by(|a, b| b.ns.cmp(&a.ns).then(a.key.cmp(&b.key)));
    CriticalPath {
        total_ns,
        coverage: if wall_ns == 0 {
            0.0
        } else {
            total_ns as f64 / wall_ns as f64
        },
        segments,
        by_category,
    }
}

/// Map↔shuffle overlap over interval unions, computed **per lane**
/// (`(pid, tid)`) and summed. Map = spans named `map`; shuffle = `ship`
/// (MPI-D pipelines) and `copy` (Hadoop shuffle fetch).
///
/// The per-lane restriction makes the ratio measure *producer-side
/// pipelining* — the paper's mechanism: an MPI-D mapper ships its own
/// spills while it is still mapping, so `ship` overlaps `map` on the same
/// lane. Hadoop's copy runs on reduce-task lanes and only moves a map
/// output *after* the producing task committed it to disk, so its
/// shuffle never overlaps map work on its own lane even though, job-wide,
/// the copy phase runs concurrently with later map waves.
fn overlap_stats(work: &[&crate::Event]) -> OverlapStats {
    let mut map: BTreeMap<(u32, u32), Vec<Iv>> = BTreeMap::new();
    let mut shuffle: BTreeMap<(u32, u32), Vec<Iv>> = BTreeMap::new();
    for ev in work {
        let iv = (ev.ts_ns, ev.end_ns());
        let name = ev.name.as_ref();
        if name == names::SPAN_MAP {
            map.entry((ev.pid, ev.tid)).or_default().push(iv);
        } else if names::SHUFFLE_SPANS.contains(&name) {
            shuffle.entry((ev.pid, ev.tid)).or_default().push(iv);
        }
    }
    let (mut map_ns, mut shuffle_ns, mut overlap_ns) = (0u64, 0u64, 0u64);
    for ivs in map.values() {
        map_ns += total_len(&union(ivs.clone()));
    }
    for (lane, ivs) in &shuffle {
        let sh = union(ivs.clone());
        shuffle_ns += total_len(&sh);
        if let Some(mp) = map.get(lane) {
            overlap_ns += total_len(&intersect(&union(mp.clone()), &sh));
        }
    }
    OverlapStats {
        map_ns,
        shuffle_ns,
        overlap_ns,
        ratio: if shuffle_ns == 0 {
            0.0
        } else {
            overlap_ns as f64 / shuffle_ns as f64
        },
    }
}

/// Phases whose unexplained self time means waiting on another host rather
/// than local computation: they only make progress when a peer sends,
/// acknowledges, or drains data.
fn blocks_on_peer(name: &str) -> bool {
    names::BLOCKS_ON_PEER_SPANS.contains(&name)
}

/// Classify every work span's self-time against its host's resource
/// occupancy timelines.
fn attribute(
    work: &[&crate::Event],
    disk: &BTreeMap<u32, Vec<Iv>>,
    net_only: &BTreeMap<u32, Vec<Iv>>,
) -> Vec<AttributionRow> {
    // Group spans by lane so nesting (e.g. `combine` inside `buffer`) can be
    // subtracted: a span's self-time excludes lanemates strictly inside it.
    let mut lanes: BTreeMap<(u32, u32), Vec<usize>> = BTreeMap::new();
    for (i, ev) in work.iter().enumerate() {
        lanes.entry((ev.pid, ev.tid)).or_default().push(i);
    }
    let mut rows: BTreeMap<&str, AttributionRow> = BTreeMap::new();
    let empty: Vec<Iv> = Vec::new();
    for ((pid, _tid), members) in &lanes {
        let d = disk.get(pid).unwrap_or(&empty);
        let n = net_only.get(pid).unwrap_or(&empty);
        for &i in members {
            let ev = work[i];
            let (s, e) = (ev.ts_ns, ev.end_ns());
            // Children: lanemates nested strictly inside this span.
            let children: Vec<Iv> = members
                .iter()
                .filter(|&&j| j != i)
                .map(|&j| (work[j].ts_ns, work[j].end_ns()))
                .filter(|&(cs, ce)| cs >= s && ce <= e && (ce - cs) < (e - s))
                .collect();
            let self_ivs = subtract(&[(s, e)], &union(children));
            let self_ns = total_len(&self_ivs);
            let disk_ns = total_len(&intersect(&self_ivs, d));
            let network_ns = total_len(&intersect(&self_ivs, n));
            let rest = self_ns - disk_ns - network_ns;
            let (blocked_ns, compute_ns) = if blocks_on_peer(ev.name.as_ref()) {
                (rest, 0)
            } else {
                (0, rest)
            };
            let row = rows
                .entry(ev.name.as_ref())
                .or_insert_with(|| AttributionRow {
                    name: ev.name.to_string(),
                    count: 0,
                    span_ns: 0,
                    self_ns: 0,
                    disk_ns: 0,
                    network_ns: 0,
                    blocked_ns: 0,
                    compute_ns: 0,
                });
            row.count += 1;
            row.span_ns += e - s;
            row.self_ns += self_ns;
            row.disk_ns += disk_ns;
            row.network_ns += network_ns;
            row.blocked_ns += blocked_ns;
            row.compute_ns += compute_ns;
        }
    }
    let mut out: Vec<AttributionRow> = rows.into_values().collect();
    out.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
    out
}

/// Summarize counter-event streams whose name starts with `prefix`,
/// grouped by name across lanes.
fn counter_stats(
    streams: &BTreeMap<(String, u32, u32), Vec<f64>>,
    prefix: &str,
) -> Vec<CounterStat> {
    let mut by_name: BTreeMap<&str, CounterStat> = BTreeMap::new();
    for ((name, _pid, _tid), samples) in streams {
        if !name.starts_with(prefix) || samples.is_empty() {
            continue;
        }
        let stat = by_name.entry(name).or_insert_with(|| CounterStat {
            name: name.clone(),
            samples: 0,
            max: f64::NEG_INFINITY,
            mean: 0.0, // holds the running sum until the final pass below
            last_sum: 0.0,
        });
        stat.samples += samples.len();
        for &v in samples {
            stat.max = stat.max.max(v);
            stat.mean += v;
        }
        stat.last_sum += samples.last().copied().unwrap_or(0.0);
    }
    let mut out: Vec<CounterStat> = by_name.into_values().collect();
    for s in &mut out {
        s.mean /= s.samples as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuffer;

    fn span(
        t: &mut Trace,
        pid: u32,
        tid: u32,
        name: &'static str,
        cat: &'static str,
        s: u64,
        e: u64,
    ) {
        let mut b = TraceBuffer::new(pid, tid);
        b.complete(name, cat, s, e, vec![]);
        t.absorb(b);
    }

    #[test]
    fn interval_algebra() {
        let u = union(vec![(5, 10), (0, 3), (9, 12), (3, 4)]);
        assert_eq!(u, vec![(0, 4), (5, 12)]);
        assert_eq!(total_len(&u), 11);
        let v = union(vec![(2, 6), (11, 20)]);
        assert_eq!(intersect(&u, &v), vec![(2, 4), (5, 6), (11, 12)]);
        assert_eq!(subtract(&u, &v), vec![(0, 2), (6, 11)]);
        assert_eq!(subtract(&v, &u), vec![(4, 5), (12, 20)]);
    }

    #[test]
    fn critical_path_picks_longest_chain() {
        let mut t = Trace::new();
        // Chain A: 0-10 map, 10-30 ship (total 30).
        span(&mut t, 1, 0, "map", "mpid.phase", 0, 10);
        span(&mut t, 1, 0, "ship", "mpid.phase", 10, 30);
        // Chain B: a single long overlapping span (total 25) — loses.
        span(&mut t, 2, 0, "map", "mpid.phase", 2, 27);
        t.sort();
        let p = RunProfile::build(&t, None, "t");
        assert_eq!(p.critical_path.total_ns, 30);
        assert_eq!(p.critical_path.segments.len(), 2);
        assert_eq!(p.critical_path.segments[0].name, "map");
        assert_eq!(p.critical_path.segments[1].name, "ship");
        assert_eq!(p.wall_ns, 30);
        assert!((p.critical_path.coverage - 1.0).abs() < 1e-12);
        // Category attribution covers the whole chain.
        let total: u64 = p.critical_path.by_category.iter().map(|c| c.ns).sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn overlap_ratio_full_and_partial() {
        // MPI-D-like: the mapper ships its own spills while still mapping
        // (same lane), the drain tail extends past map finish.
        let mut t = Trace::new();
        span(&mut t, 1, 0, "map", "mpid.phase", 0, 100);
        span(&mut t, 1, 0, "ship", "mpid.phase", 50, 150);
        t.sort();
        let p = RunProfile::build(&t, None, "mpid");
        assert!((p.overlap.ratio - 0.5).abs() < 1e-12);
        assert_eq!(p.overlap.shuffle_ns, 100);
        assert_eq!(p.overlap.overlap_ns, 50);
        // Ship entirely inside the same lane's map: fully pipelined.
        let mut t = Trace::new();
        span(&mut t, 1, 0, "map", "mpid.phase", 0, 100);
        span(&mut t, 1, 0, "ship", "mpid.phase", 20, 60);
        t.sort();
        let p = RunProfile::build(&t, None, "mpid");
        assert_eq!(p.overlap.ratio, 1.0);
        // Hadoop-like: the copy runs on a reduce-task lane concurrently
        // with map work on other lanes — job-level concurrency, but no
        // producer-side pipelining, so it counts as zero overlap.
        let mut t = Trace::new();
        span(&mut t, 1, 0, "map", "hadoop.phase", 0, 100);
        span(&mut t, 2, 9, "copy", "hadoop.phase", 50, 150);
        t.sort();
        let p = RunProfile::build(&t, None, "hadoop");
        assert_eq!(p.overlap.ratio, 0.0);
        assert_eq!(p.overlap.shuffle_ns, 100);
        assert_eq!(p.overlap.overlap_ns, 0);
    }

    #[test]
    fn attribution_classifies_against_flows() {
        let mut t = Trace::new();
        // A 100 ns map on host 3 with 30 ns of disk and 20 ns of network
        // occupancy underneath; the remaining 50 ns is compute.
        span(&mut t, 3, 0, "map", "mpid.phase", 0, 100);
        span(&mut t, 3, 7, "disk_read", "net.flow", 0, 30);
        span(&mut t, 3, 8, "xfer", "net.flow", 30, 50);
        // A copy span on host 3 with nothing underneath: blocked on a peer.
        span(&mut t, 3, 9, "copy", "hadoop.phase", 100, 160);
        t.sort();
        let p = RunProfile::build(&t, None, "t");
        let map = p.attribution.iter().find(|r| r.name == "map").unwrap();
        assert_eq!(
            (map.disk_ns, map.network_ns, map.compute_ns, map.blocked_ns),
            (30, 20, 50, 0)
        );
        let copy = p.attribution.iter().find(|r| r.name == "copy").unwrap();
        assert_eq!((copy.blocked_ns, copy.compute_ns), (60, 0));
    }

    #[test]
    fn nested_child_spans_reduce_self_time() {
        let mut t = Trace::new();
        span(&mut t, 1, 5, "buffer", "mpid.stage", 0, 100);
        span(&mut t, 1, 5, "combine", "mpid.stage", 40, 70);
        t.sort();
        let p = RunProfile::build(&t, None, "t");
        let buffer = p.attribution.iter().find(|r| r.name == "buffer").unwrap();
        assert_eq!(buffer.span_ns, 100);
        assert_eq!(buffer.self_ns, 70, "combine's 30 ns subtracted");
        let combine = p.attribution.iter().find(|r| r.name == "combine").unwrap();
        assert_eq!(combine.self_ns, 30);
    }

    #[test]
    fn counter_streams_summarized() {
        let mut t = Trace::new();
        let mut b = TraceBuffer::new(1, 0);
        b.counter("mpid.mem.table_bytes", "mpid.mem", 10, 100.0);
        b.counter("mpid.mem.table_bytes", "mpid.mem", 20, 300.0);
        b.counter("net.util.up", "net.util", 10, 0.5);
        t.absorb(b);
        let mut b = TraceBuffer::new(2, 0);
        b.counter("mpid.mem.table_bytes", "mpid.mem", 15, 200.0);
        t.absorb(b);
        t.sort();
        let p = RunProfile::build(&t, None, "t");
        assert_eq!(p.memory.len(), 1);
        let m = &p.memory[0];
        assert_eq!(m.name, "mpid.mem.table_bytes");
        assert_eq!(m.samples, 3);
        assert_eq!(m.max, 300.0);
        assert_eq!(m.mean, 200.0);
        assert_eq!(m.last_sum, 500.0, "host 1 final 300 + host 2 final 200");
        assert_eq!(p.utilization.len(), 1);
        assert_eq!(p.utilization[0].name, "net.util.up");
    }

    #[test]
    fn json_and_render_are_deterministic() {
        let mut t = Trace::new();
        span(&mut t, 1, 0, "map", "mpid.phase", 0, 10);
        span(&mut t, 1, 1, "ship", "mpid.phase", 5, 12);
        t.sort();
        let mut m = Metrics::new();
        m.inc("net.solver.reallocs", 3);
        let a = RunProfile::build(&t, Some(&m), "t");
        let b = RunProfile::build(&t, Some(&m), "t");
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.render(), b.render());
        assert!(a.to_json().contains("\"schema\": \"mpid-profile/1\""));
        assert!(a.to_json().contains("\"net.solver.reallocs\": 3"));
        assert!(a.render().contains("overlap ratio"));
    }

    #[test]
    fn empty_trace_profile_is_well_formed() {
        let p = RunProfile::build(&Trace::new(), None, "empty");
        assert_eq!(p.wall_ns, 0);
        assert_eq!(p.critical_path.total_ns, 0);
        assert_eq!(p.overlap.ratio, 0.0);
        assert!(p.to_json().contains("\"segments\": []"));
    }
}
