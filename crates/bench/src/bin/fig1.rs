//! Figure 1 — per-reducer copy/sort/reduce times for the GridMix JavaSort
//! benchmark: 150 GB over 7 worker nodes, 8/8 slots, 2345 reducers.
//!
//! Paper observations reproduced here:
//! * 56 (7 × 8) first-wave reducers are outliers ("their time reaches
//!   4000 s") — they are scheduled at 5 % map completion and their copy
//!   stage waits for the whole map phase; the paper deletes them, we report
//!   them separately and trim them the same way;
//! * after trimming: copy 48–178 s (avg 128.5 s), sort ≈ 0.0102 s avg,
//!   reduce 2–58 s (avg 6.80 s);
//! * "the total time of the copy stage … occupies about 95 % of the all
//!   reducers' whole life cycles".
//!
//! Run with `--quick` for a 4 GB / 64-reducer scale check, `--dump <path>`
//! to write the per-reducer series (reducer id, copy, sort, reduce — the
//! plottable Figure 1 data), or `--trace <path>` to write a Chrome trace of
//! the whole job (per-node map/copy/sort/reduce spans) and print the phase
//! breakdown reconstructed from it.

use hadoop_sim::HadoopConfig;
use mpid_bench::{arg_value, fmt_secs, GB};
use std::io::Write;
use workloads::javasort_spec;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let dump = arg_value(&args, "--dump");
    let trace_path = arg_value(&args, "--trace");

    let (input, n_reduces, outliers) = if quick {
        (4 * GB, 64, 56)
    } else {
        (150 * GB, 2345, 56)
    };
    println!(
        "Figure 1 — JavaSort {} / {} reducers / 8x8 slots on the simulated testbed",
        mpid_bench::fmt_size(input),
        n_reduces
    );
    let cfg = HadoopConfig::icpp2011(8, 8, n_reduces);
    let tracer = trace_path.as_ref().map(|_| obs::Tracer::new());
    let report = match &tracer {
        Some(t) => hadoop_sim::run_job_traced(cfg, javasort_spec(input), t.clone()),
        None => hadoop_sim::run_job(cfg, javasort_spec(input)),
    };
    if let (Some(t), Some(path)) = (&tracer, &trace_path) {
        mpid_bench::emit_trace(
            t,
            path,
            obs::names::CAT_HADOOP_PHASE,
            "Figure 1 job — phase breakdown from trace",
        );
    }

    if let Some(path) = dump {
        let mut f = std::fs::File::create(&path).expect("create dump file");
        writeln!(f, "reducer_id\tcopy_s\tsort_s\treduce_s").unwrap();
        for (i, r) in report.reduces.iter().enumerate() {
            writeln!(
                f,
                "{i}\t{:.3}\t{:.4}\t{:.3}",
                r.copy.as_secs_f64(),
                r.sort.as_secs_f64(),
                r.reduce.as_secs_f64()
            )
            .unwrap();
        }
        println!("per-reducer series written to {path}");
    }

    let trimmed = report.without_top_copy_outliers(outliers);
    let copy = trimmed.reduce_phase_stats(|r| r.copy);
    let sort = trimmed.reduce_phase_stats(|r| r.sort);
    let reduce = trimmed.reduce_phase_stats(|r| r.reduce);
    let outlier_min = report
        .reduces
        .iter()
        .map(|r| r.copy)
        .max()
        .unwrap()
        .as_secs_f64();

    println!();
    let header = format!(
        "{:>8}  {:>10} {:>10} {:>10}   {}",
        "stage", "min", "avg", "max", "paper (150GB)"
    );
    println!("{header}");
    mpid_bench::rule(&header);
    println!(
        "{:>8}  {:>10} {:>10} {:>10}   48 s .. avg 128.5 s .. 178 s",
        "copy",
        fmt_secs(copy.min()),
        fmt_secs(copy.mean()),
        fmt_secs(copy.max())
    );
    println!(
        "{:>8}  {:>10} {:>10} {:>10}   avg 0.0102 s",
        "sort",
        fmt_secs(sort.min()),
        fmt_secs(sort.mean()),
        fmt_secs(sort.max())
    );
    println!(
        "{:>8}  {:>10} {:>10} {:>10}   2 s .. avg 6.80 s .. 58 s",
        "reduce",
        fmt_secs(reduce.min()),
        fmt_secs(reduce.mean()),
        fmt_secs(reduce.max())
    );
    println!();
    println!(
        "trimmed {} first-wave outliers (max copy {}; paper: \"their time reaches 4000 s\")",
        outliers,
        fmt_secs(outlier_min)
    );
    println!(
        "copy share of reducer lifecycles: {:.0}% (paper: \"about 95%\")",
        100.0 * trimmed.copy_share_of_reducers()
    );
    println!("job makespan: {}", fmt_secs(report.makespan.as_secs_f64()));

    if quick {
        println!("(--quick scale is too small for the paper's copy-dominance effect; shape checks skipped)");
        return;
    }
    // Shape assertions (full scale only — the effect needs 1000s of
    // reducers, each seeking into every map output).
    assert!(
        trimmed.copy_share_of_reducers() > 0.75,
        "copy must dominate reducer lifecycles"
    );
    assert!(
        copy.mean() > 5.0 * reduce.mean(),
        "copy stage must dwarf the reduce stage"
    );
    assert!(
        sort.mean() < 0.1,
        "in-memory merge must be near-instant (paper: 0.0102 s)"
    );
    assert!(
        outlier_min > 2.5 * copy.max(),
        "first-wave reducers must be extreme outliers"
    );
}
