//! Table I — share of the shuffle copy stage in total mapper+reducer
//! execution time, for input sizes {1, 3, 9, 27, 81, 150} GB and slot
//! configurations {4/2, 4/4, 8/8, 16/16} per node.
//!
//! Paper values range from 33.9 % (3 GB, 4/4) to 82.7 % (150 GB, 8/8), with
//! a strong upward trend in input size: "the copy stage in shuffle is a
//! time consuming phase."
//!
//! Reduce-task count scales with input like the paper's GridMix run (2345
//! reducers for 150 GB ≈ 0.98 × the map count). Run with `--quick` to stop
//! at 9 GB, or `--trace <path>` to write a Chrome trace of the largest 8/8
//! cell and re-derive its copy share from the trace alone.

use hadoop_sim::HadoopConfig;
use mpid_bench::GB;
use workloads::javasort_spec;

/// Paper Table I, for side-by-side printing: `paper[size][config]` in %.
const PAPER: &[(&str, [f64; 4])] = &[
    ("1GB", [43.1, 43.0, 38.5, 35.7]),
    ("3GB", [35.0, 33.9, 35.9, 46.3]),
    ("9GB", [43.1, 42.9, 42.8, 39.7]),
    ("27GB", [44.3, 47.9, 43.18, 36.4]),
    ("81GB", [60.0, 71.0, 74.6, 73.9]),
    ("150GB", [69.6, 82.0, 82.7, 80.6]),
];

fn n_reduces_for(input: u64) -> usize {
    // GridMix sizes reduces with the data; the paper's 150 GB run used 2345
    // reducers for 2400 maps.
    let maps = input.div_ceil(64 << 20);
    ((maps as f64 * 2345.0 / 2400.0).round() as usize).max(1)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let trace_path = mpid_bench::arg_value(&args, "--trace");
    let sizes: &[(f64, &str)] = if quick {
        &[(1.0, "1GB"), (3.0, "3GB"), (9.0, "9GB")]
    } else {
        &[
            (1.0, "1GB"),
            (3.0, "3GB"),
            (9.0, "9GB"),
            (27.0, "27GB"),
            (81.0, "81GB"),
            (150.0, "150GB"),
        ]
    };
    let configs: [(usize, usize, &str); 4] = [
        (4, 2, "4/2"),
        (4, 4, "4/4"),
        (8, 8, "8/8"),
        (16, 16, "16/16"),
    ];

    println!("Table I — copy-stage share of total mapper+reducer execution time");
    println!("(JavaSort on the simulated testbed; `sim%` vs the paper's `paper%`)");
    println!();
    let header = format!(
        "{:>7} | {:>13} | {:>13} | {:>13} | {:>13}",
        "size", "4/2", "4/4", "8/8", "16/16"
    );
    println!("{header}");
    mpid_bench::rule(&header);

    let mut first_row_avg = 0.0;
    let mut last_row_avg = 0.0;
    let mut traced_cell: Option<obs::Tracer> = None;
    for (row_idx, &(gb, label)) in sizes.iter().enumerate() {
        let input = (gb * GB as f64) as u64;
        let spec = javasort_spec(input);
        let n_red = n_reduces_for(input);
        let mut cells = Vec::new();
        for &(ms, rs, slots) in &configs {
            let cfg = HadoopConfig::icpp2011(ms, rs, n_red);
            // Trace the largest-size 8/8 cell: the copy-dominance claim is
            // then re-derived below from the trace alone.
            let trace_this = trace_path.is_some() && row_idx == sizes.len() - 1 && slots == "8/8";
            let report = if trace_this {
                let tracer = obs::Tracer::new();
                let report = hadoop_sim::run_job_traced(cfg, spec.clone(), tracer.clone());
                traced_cell = Some(tracer);
                report
            } else {
                hadoop_sim::run_job(cfg, spec.clone())
            };
            cells.push(100.0 * report.copy_fraction());
        }
        let paper_row = PAPER
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, v)| *v)
            .expect("paper row");
        println!(
            "{:>7} | {:>5.1}% ({:>4.1}) | {:>5.1}% ({:>4.1}) | {:>5.1}% ({:>4.1}) | {:>5.1}% ({:>4.1})",
            label,
            cells[0], paper_row[0],
            cells[1], paper_row[1],
            cells[2], paper_row[2],
            cells[3], paper_row[3],
        );
        let avg = cells.iter().sum::<f64>() / cells.len() as f64;
        if row_idx == 0 {
            first_row_avg = avg;
        }
        last_row_avg = avg;
    }

    if let (Some(tracer), Some(path)) = (&traced_cell, &trace_path) {
        // The acceptance check behind Table I: the copy > sort dominance
        // must fall out of the trace with no help from JobReport.
        let trace = tracer.trace();
        let bd = obs::report::PhaseBreakdown::from_trace(&trace, obs::names::CAT_HADOOP_PHASE);
        assert!(
            bd.share_of("copy") > bd.share_of("sort"),
            "trace-derived breakdown must show copy dominating sort"
        );
        drop(trace);
        mpid_bench::emit_trace(
            tracer,
            path,
            obs::names::CAT_HADOOP_PHASE,
            "Largest 8/8 cell — phase breakdown from trace",
        );
    }

    println!();
    println!(
        "shape: copy share grows with input size ({first_row_avg:.0}% -> {last_row_avg:.0}% row average); \
         paper range 33.9%..82.7%"
    );
    assert!(
        last_row_avg > first_row_avg,
        "copy share must grow with input size"
    );
    if !quick {
        assert!(
            last_row_avg > 55.0,
            "large inputs must be copy-dominated (paper: 69.6%..82.7% at 150GB)"
        );
        assert!(
            (15.0..=60.0).contains(&first_row_avg),
            "small inputs must show a material but not dominant copy share"
        );
    }
}
