//! perf — wall-clock performance harness for the simulation substrate.
//!
//! Times the hot paths the other figure binaries lean on and emits a
//! schema-versioned `BENCH.json` for CI regression gating (see
//! `cargo xtask bench-diff`):
//!
//! * **flow churn** — event-loop throughput of the fluid network driver
//!   (flows/sec through start → reallocate → complete cycles), with the
//!   incremental solver and with `--force-full` recomputes, side by side;
//! * **fig6 sims** — the Figure 6 WordCount runs (stock Hadoop and the
//!   MPI-D simulation system) at 1 / 10 / 100 GB, wall-clock each;
//! * **solver A/B** — the 100 GB MPI-D sim traced under both solver modes,
//!   reporting the `net.solver.resources_swept` counters and the wall-clock
//!   ratio (the incremental-solver acceptance metric); each mode gets one
//!   discarded warmup run so the timed run isn't paying first-touch costs;
//! * **mpid pipeline shapes** — the real threads-as-ranks MPI-D data path
//!   (buffer → combine → realign → ship → merge) over pre-materialized
//!   inputs, MB/s over encoded wire bytes. Input generation happens
//!   *outside* the timed region, so the number is the pipeline's, not the
//!   generator's. Shapes: Zipf word pairs (`mpid_pipeline`), small keys
//!   with large values (`pipe_large_values`), all-distinct keys
//!   (`pipe_many_keys`), LZ wire compression (`pipe_compressed`), the
//!   bounded-memory external merge (`pipe_extmerge`), and the non-baseline
//!   shuffle strategies — in-node combining with two mappers per host
//!   (`pipe_innode`) and degenerate coded ship at r = 2 (`pipe_coded_r2`).
//!
//! `--quick` shrinks the microbench sizes for CI; the bench *names* are
//! identical in both modes so baselines stay comparable (the JSON records
//! which mode produced it). `--out <path>` writes the JSON report.
//! `--filter <substr>` runs only the benches whose name contains the
//! substring (the report then contains just those benches).
//!
//! `--profile <dir>` re-runs every profileable filtered bench (the fig6
//! sims and the real pipeline shapes) under tracing and writes a
//! deterministic `<dir>/<bench>.profile.json` run profile
//! (`obs::analysis::RunProfile`, schema `mpid-profile/1`; see
//! `cargo xtask trace-diff`). Sim profiles are byte-identical run to run;
//! real-pipeline profiles have deterministic counters and span structure
//! but wall-clock duration fields. `--trace <path>` writes each profiled
//! bench's Chrome trace, inserting the bench name before the `.json`
//! extension when several match.

use desim::{Scheduler, Sim, SimTime};
use hadoop_sim::HadoopConfig;
use mapred::{
    run_mpid, run_mpid_traced, run_sim_mpid, run_sim_mpid_traced, MapReduceApp, MpidEngineConfig,
    SimMpidConfig, VecInput,
};
use mpid::Kv;
use mpid_bench::{fmt_secs, GB};
use netsim::{Cluster, ClusterSpec, HasNet, HostId, Net, SolverStats};
use std::sync::Arc;
use std::time::Instant;
use workloads::{rank_to_word, wordcount_spec, zipf_pairs, JavaSort, WordCountPairs};

/// One timed benchmark: a wall-clock plus named scalar metrics.
struct Bench {
    name: &'static str,
    wall_s: f64,
    metrics: Vec<(&'static str, f64)>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = mpid_bench::arg_value(&args, "--out");
    let filter = mpid_bench::arg_value(&args, "--filter");
    let profile_dir = mpid_bench::arg_value(&args, "--profile");
    let trace_path = mpid_bench::arg_value(&args, "--trace");
    let threads: usize = mpid_bench::arg_value(&args, "--threads")
        .map(|t| t.parse().expect("--threads takes a positive integer"))
        .unwrap_or(1);
    assert!(threads >= 1, "--threads takes a positive integer");
    if args.iter().any(|a| a == "--check-mem") {
        std::process::exit(check_mem(quick));
    }
    let want = |name: &str| filter.as_deref().is_none_or(|f| name.contains(f));

    println!(
        "perf — simulation-substrate wall-clock harness ({}{})",
        if quick { "quick" } else { "full" },
        filter
            .as_deref()
            .map(|f| format!(", filter \"{f}\""))
            .unwrap_or_default()
    );
    println!();

    let mut benches: Vec<Bench> = Vec::new();

    // ------------------------------------------------------------------
    // 1. Flow churn: event-loop throughput of the fluid network driver.
    // ------------------------------------------------------------------
    if want("flow_churn") || want("flow_churn_full") {
        let churn_flows: u64 = if quick { 20_000 } else { 100_000 };
        let (inc_wall, inc_stats) = flow_churn(churn_flows, false);
        let (full_wall, full_stats) = flow_churn(churn_flows, true);
        let inc_rate = churn_flows as f64 / inc_wall;
        println!(
            "flow_churn        {:>10}  {churn_flows} flows, {:.0} flows/s (incremental)",
            fmt_secs(inc_wall),
            inc_rate
        );
        println!(
            "flow_churn_full   {:>10}  {churn_flows} flows, {:.0} flows/s (forced full recompute)",
            fmt_secs(full_wall),
            churn_flows as f64 / full_wall
        );
        if want("flow_churn") {
            benches.push(Bench {
                name: "flow_churn",
                wall_s: inc_wall,
                metrics: vec![
                    ("flows_per_sec", inc_rate),
                    ("resources_swept", inc_stats.resources_swept as f64),
                    ("recomputes", inc_stats.recomputes as f64),
                ],
            });
        }
        if want("flow_churn_full") {
            benches.push(Bench {
                name: "flow_churn_full",
                wall_s: full_wall,
                metrics: vec![
                    ("flows_per_sec", churn_flows as f64 / full_wall),
                    ("resources_swept", full_stats.resources_swept as f64),
                    ("recomputes", full_stats.recomputes as f64),
                ],
            });
        }
    }

    // ------------------------------------------------------------------
    // 2. Figure-6 WordCount sims, wall-clock per size and system.
    // ------------------------------------------------------------------
    println!();
    for gb in [1u64, 10, 100] {
        let h_name: &'static str = match gb {
            1 => "fig6_hadoop_1gb",
            10 => "fig6_hadoop_10gb",
            _ => "fig6_hadoop_100gb",
        };
        let m_name: &'static str = match gb {
            1 => "fig6_mpid_1gb",
            10 => "fig6_mpid_10gb",
            _ => "fig6_mpid_100gb",
        };
        if want(h_name) {
            let spec = wordcount_spec(gb * GB);
            let t0 = Instant::now();
            let h = hadoop_sim::run_job(HadoopConfig::icpp2011(7, 7, 7), spec);
            let h_wall = t0.elapsed().as_secs_f64();
            println!(
                "{h_name:<17} {:>10}  (simulated makespan {})",
                fmt_secs(h_wall),
                fmt_secs(h.makespan.as_secs_f64())
            );
            benches.push(Bench {
                name: h_name,
                wall_s: h_wall,
                metrics: vec![("sim_makespan_s", h.makespan.as_secs_f64())],
            });
        }
        if want(m_name) {
            let spec = wordcount_spec(gb * GB);
            let t0 = Instant::now();
            let m = run_sim_mpid(
                SimMpidConfig::icpp2011_fig6().with_auto_splits(gb * GB),
                spec,
            );
            let m_wall = t0.elapsed().as_secs_f64();
            println!(
                "{m_name:<17} {:>10}  (simulated makespan {})",
                fmt_secs(m_wall),
                fmt_secs(m.makespan.as_secs_f64())
            );
            benches.push(Bench {
                name: m_name,
                wall_s: m_wall,
                metrics: vec![("sim_makespan_s", m.makespan.as_secs_f64())],
            });
        }
    }

    // ------------------------------------------------------------------
    // 3. Solver A/B: the 100 GB MPI-D sim under both solver modes. The
    //    resources_swept counters come from the `net.solver.*` metrics the
    //    network driver publishes into the tracer. One discarded warmup
    //    run per mode: the first traced sim pays allocator growth and
    //    cold-cache costs that would otherwise bias whichever mode runs
    //    first (the original source of a phantom <1.0 "speedup").
    // ------------------------------------------------------------------
    if want("solver_ab_mpid_100gb") {
        println!();
        let _ = traced_mpid_100gb(false);
        let (ab_inc_wall, ab_inc_sweeps) = traced_mpid_100gb(false);
        let _ = traced_mpid_100gb(true);
        let (ab_full_wall, ab_full_sweeps) = traced_mpid_100gb(true);
        let wall_ratio = ab_full_wall / ab_inc_wall;
        let sweep_ratio = ab_full_sweeps as f64 / (ab_inc_sweeps.max(1)) as f64;
        println!(
            "solver A/B (fig6 100GB MPI-D): wall {} -> {} ({wall_ratio:.1}x), \
             resource sweeps {ab_full_sweeps} -> {ab_inc_sweeps} ({sweep_ratio:.1}x fewer)",
            fmt_secs(ab_full_wall),
            fmt_secs(ab_inc_wall),
        );
        benches.push(Bench {
            name: "solver_ab_mpid_100gb",
            wall_s: ab_inc_wall,
            metrics: vec![
                ("wall_full_s", ab_full_wall),
                ("sweeps_incremental", ab_inc_sweeps as f64),
                ("sweeps_full", ab_full_sweeps as f64),
                ("sweep_ratio", sweep_ratio),
                ("wall_speedup", wall_ratio),
            ],
        });
    }

    // ------------------------------------------------------------------
    // 4. Serving under contention: the figserve heavy-load grid point
    //    (fair-share scheduler) replayed on each stack. Wall-clock is the
    //    cost of simulating the whole stream; the simulated stream
    //    metrics (jobs/sec, p99 job latency, utilization) are
    //    deterministic and feed bench-diff's throughput and latency
    //    gates.
    // ------------------------------------------------------------------
    if want("serve_hadoop") || want("serve_mpid") {
        println!();
        let (n_racks, per_rack, n_jobs) = if quick { (3, 8, 16) } else { (5, 24, 60) };
        let stream = serve::arrival_stream(
            0x5E12,
            &serve::ArrivalConfig::new(n_jobs, SimTime::from_secs(2)),
        );
        let calm = faults::FaultPlan::none();
        type BackendCtor = fn() -> Box<dyn serve::JobBackend>;
        let backends: [(&'static str, BackendCtor); 2] = [
            ("serve_hadoop", serve::hadoop_backend),
            ("serve_mpid", serve::mpid_backend),
        ];
        for (name, backend) in backends {
            if !want(name) {
                continue;
            }
            let cfg = serve::ServeConfig::rackscale(n_racks, per_rack, 4.0);
            let t0 = Instant::now();
            let report = serve::run_serve(
                &cfg,
                Box::new(serve::FairShare),
                backend(),
                &stream,
                &calm,
                None,
            );
            let wall = t0.elapsed().as_secs_f64();
            let p99 = report.latency_quantile(0.99).as_secs_f64();
            println!(
                "{name:<17} {:>10}  {} jobs on {} hosts: {:.3} jobs/s, p99 {}, util {:.0}%",
                fmt_secs(wall),
                report.jobs.len(),
                cfg.cluster.hosts(),
                report.jobs_per_sec(),
                fmt_secs(p99),
                100.0 * report.utilization(),
            );
            benches.push(Bench {
                name,
                wall_s: wall,
                metrics: vec![
                    ("jobs_per_sec", report.jobs_per_sec()),
                    ("p99_latency_s", p99),
                    ("utilization", report.utilization()),
                ],
            });
        }
    }

    // ------------------------------------------------------------------
    // 5. Real MPI-D pipeline shapes: threads-as-ranks jobs over inputs
    //    materialized before the timer starts. MB/s is over encoded wire
    //    bytes (sum of every record's `Kv::wire_size`), the same unit the
    //    sender's spill accounting uses, so the number tracks data-path
    //    work rather than input-generator entropy.
    // ------------------------------------------------------------------
    println!();
    let scale = if quick { 1 } else { 4 };

    // Warm the thread/allocator machinery once so the first timed shape
    // isn't also paying universe spin-up cold costs.
    let shapes = [
        "mpid_pipeline",
        "pipe_large_values",
        "pipe_many_keys",
        "pipe_compressed",
        "pipe_extmerge",
        "pipe_innode",
        "pipe_coded_r2",
        "mpid_pipeline_t1",
        "mpid_pipeline_t2",
        "mpid_pipeline_t4",
        "pipe_many_keys_t1",
        "pipe_many_keys_t2",
        "pipe_many_keys_t4",
    ];
    if shapes.iter().any(|n| want(n)) {
        let warm = zipf_pairs(1, 65_536, 1_000);
        let _ = run_mpid(
            &pipe_cfg(threads),
            Arc::new(WordCountPairs),
            Arc::new(VecInput::round_robin(warm, 8)),
        );
    }

    // Shape 1: Zipf word pairs — the WordCount shuffle with combining.
    if want("mpid_pipeline") {
        let pairs = zipf_pairs(11, scale * 524_288, 20_000);
        benches.push(pipe_shape(
            "mpid_pipeline",
            &pipe_cfg(threads),
            WordCountPairs,
            pairs,
        ));
    }

    // Shape 2: small key space, 4 KiB values — realign/ship dominated,
    // no combining possible (JavaSort is identity).
    if want("pipe_large_values") {
        let n = scale * 512;
        let recs: Vec<(u64, Vec<u8>)> = (0..n as u64)
            .map(|i| {
                (
                    i.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    vec![(i % 251) as u8; 4096],
                )
            })
            .collect();
        benches.push(pipe_shape(
            "pipe_large_values",
            &pipe_cfg(threads),
            JavaSort,
            recs,
        ));
    }

    // Shape 3: every key distinct — the combiner never fires, the hash
    // table and spill-sort see maximum distinct-key pressure.
    if want("pipe_many_keys") {
        let n = scale * 131_072;
        let pairs: Vec<(String, u64)> = (0..n).map(|i| (rank_to_word(i), 1)).collect();
        benches.push(pipe_shape(
            "pipe_many_keys",
            &pipe_cfg(threads),
            WordCountPairs,
            pairs,
        ));
    }

    // Shape 4: Zipf word pairs with LZ wire compression.
    if want("pipe_compressed") {
        let pairs = zipf_pairs(13, scale * 524_288, 20_000);
        let mut cfg = pipe_cfg(threads);
        cfg.compress = true;
        benches.push(pipe_shape("pipe_compressed", &cfg, WordCountPairs, pairs));
    }

    // Shape 5: Zipf word pairs grouped through the bounded-memory
    // external merge (reducer-side disk spill path).
    if want("pipe_extmerge") {
        let pairs = zipf_pairs(17, scale * 524_288, 20_000);
        let mut cfg = pipe_cfg(threads);
        cfg.reduce_budget_bytes = Some(256 * 1024);
        benches.push(pipe_shape("pipe_extmerge", &cfg, WordCountPairs, pairs));
    }

    // Shape 6: the in-node combine strategy — the 4 mappers pair into 2
    // per-host groups, members relay spills to their leader, and the
    // leader merges co-located output before framing. Times the relay +
    // leader-merge overhead against the baseline `mpid_pipeline` shape.
    if want("pipe_innode") {
        let pairs = zipf_pairs(19, scale * 524_288, 20_000);
        let mut cfg = pipe_cfg(threads);
        cfg.shuffle = mpid::ShuffleKind::InNodeCombine {
            mappers_per_host: 2,
        };
        benches.push(pipe_shape("pipe_innode", &cfg, WordCountPairs, pairs));
    }

    // Shape 7: coded shuffle's real-path degenerate form at r = 2 —
    // parity framing and decode algebra on every shipped frame.
    if want("pipe_coded_r2") {
        let pairs = zipf_pairs(23, scale * 524_288, 20_000);
        let mut cfg = pipe_cfg(threads);
        cfg.shuffle = mpid::ShuffleKind::Coded { r: 2 };
        benches.push(pipe_shape("pipe_coded_r2", &cfg, WordCountPairs, pairs));
    }

    // ------------------------------------------------------------------
    // 6. Thread-scaling matrix: the combined-shuffle shape and the
    //    distinct-key shape at 1 / 2 / 4 worker threads over the *same*
    //    input. Each point is its own named bench so `cargo xtask
    //    bench-diff` gates every (shape, threads) cell against its own
    //    baseline — a scaling regression fails CI even when the
    //    single-thread number is healthy. (Absolute speedup across the
    //    cells is machine-dependent; a single-core runner serializes the
    //    workers and the t2/t4 cells mostly measure sharding overhead.)
    // ------------------------------------------------------------------
    let scaling: [(&'static str, usize); 6] = [
        ("mpid_pipeline_t1", 1),
        ("mpid_pipeline_t2", 2),
        ("mpid_pipeline_t4", 4),
        ("pipe_many_keys_t1", 1),
        ("pipe_many_keys_t2", 2),
        ("pipe_many_keys_t4", 4),
    ];
    for (name, t) in scaling {
        if !want(name) {
            continue;
        }
        if name.starts_with("mpid_pipeline") {
            let pairs = zipf_pairs(11, scale * 524_288, 20_000);
            benches.push(pipe_shape(name, &pipe_cfg(t), WordCountPairs, pairs));
        } else {
            let n = scale * 131_072;
            let pairs: Vec<(String, u64)> = (0..n).map(|i| (rank_to_word(i), 1)).collect();
            benches.push(pipe_shape(name, &pipe_cfg(t), WordCountPairs, pairs));
        }
    }

    if let Some(path) = out {
        write_report(&path, quick, &benches);
        println!();
        println!("report: {} benches -> {path}", benches.len());
    }

    if profile_dir.is_some() || trace_path.is_some() {
        emit_profiles(
            quick,
            threads,
            filter.as_deref(),
            profile_dir.as_deref(),
            trace_path.as_deref(),
        );
    }
}

/// The real-pipeline engine config every shape uses: 4 mappers, 2
/// reducers, `threads` hot-path workers per data-path rank.
fn pipe_cfg(threads: usize) -> MpidEngineConfig {
    let mut cfg = MpidEngineConfig::with_workers(4, 2);
    cfg.threads = threads;
    cfg
}

/// `--check-mem`: run the bounded-memory external-merge shape with a job
/// block-pool budget and assert the pool's high-water mark respected it.
/// Prints a Markdown summary (append it to `$GITHUB_STEP_SUMMARY` in CI)
/// and returns the process exit code.
///
/// The budget must clear the sender side's deterministic peak — mappers
/// charge their raw stream unconditionally (spilling on pool pressure
/// would make spill cadence timing-dependent) and are bounded by
/// `min(raw bytes, spill_threshold_bytes)` per mapper — plus the
/// receivers' windowed ingest, which is the *checked* part: it spills
/// through the external merge rather than exceed the pool. Quick mode
/// moves ~8 MB of wire through 4 mappers (no mapper crosses the 4 MB
/// spill threshold), full mode ~32 MB (every mapper spills at 4 MB), so
/// high-water ≤ budget holds exactly when the spill-before-exceed
/// discipline works and nothing forced a charge.
fn check_mem(quick: bool) -> i32 {
    let scale = if quick { 1 } else { 4 };
    let budget = if quick { 12 << 20 } else { 24 << 20 };
    let pairs = zipf_pairs(17, scale * 524_288, 20_000);
    let wire_bytes: u64 = pairs
        .iter()
        .map(|(k, v)| (k.wire_size() + v.wire_size()) as u64)
        .sum();
    let mut cfg = pipe_cfg(1);
    cfg.reduce_budget_bytes = Some(256 * 1024);
    cfg.mem_budget = Some(budget);
    let input = Arc::new(VecInput::round_robin(pairs, 8));
    let job = run_mpid(&cfg, Arc::new(WordCountPairs), input);
    let stats = job.pool_stats.expect("mem_budget installs a job pool");
    let ok = stats.high_water <= budget && stats.forced == 0;
    println!("## perf --check-mem");
    println!();
    println!(
        "| metric | value |\n|---|---|\n| wire bytes | {} |\n| pool budget | {} |\n\
         | pool high water | {} |\n| forced charges | {} |\n| output pairs | {} |\n\
         | verdict | {} |",
        mpid_bench::fmt_size(wire_bytes),
        mpid_bench::fmt_size(budget as u64),
        mpid_bench::fmt_size(stats.high_water as u64),
        stats.forced,
        job.output.len(),
        if ok { "PASS" } else { "**FAIL**" },
    );
    if !ok {
        eprintln!(
            "check-mem: pool high water {} exceeded budget {} (forced charges: {})",
            stats.high_water, budget, stats.forced
        );
        return 1;
    }
    0
}

/// Re-run every profileable bench the filter matches under tracing: the
/// fig6 WordCount sims (deterministic sim-time profiles) and the real
/// pipeline shapes (wall-clock spans, deterministic counters). Writes a
/// `RunProfile` JSON per bench under `profile_dir` and/or a Chrome trace
/// per bench derived from `trace_path`.
fn emit_profiles(
    quick: bool,
    threads: usize,
    filter: Option<&str>,
    profile_dir: Option<&str>,
    trace_path: Option<&str>,
) {
    let want = |name: &str| filter.is_none_or(|f| name.contains(f));
    println!();
    let mut emitted = 0usize;
    let mut finish = |name: &str, trace: &obs::Trace, metrics: Option<&obs::metrics::Metrics>| {
        let profile = obs::analysis::RunProfile::build(trace, metrics, name);
        if let Some(dir) = profile_dir {
            let path = mpid_bench::write_profile(&profile, dir);
            println!(
                "profile: {name} -> {path} (overlap {:.2}, critical path {})",
                profile.overlap.ratio,
                fmt_secs(profile.critical_path.total_ns as f64 / 1e9)
            );
        }
        if let Some(base) = trace_path {
            let path = trace_file(base, name);
            obs::chrome::write_chrome_trace(trace, std::path::Path::new(&path))
                .expect("write chrome trace");
            println!("trace: {name} -> {path}");
        }
        emitted += 1;
    };

    for gb in [1u64, 10, 100] {
        let (h_name, m_name): (&str, &str) = match gb {
            1 => ("fig6_hadoop_1gb", "fig6_mpid_1gb"),
            10 => ("fig6_hadoop_10gb", "fig6_mpid_10gb"),
            _ => ("fig6_hadoop_100gb", "fig6_mpid_100gb"),
        };
        if want(h_name) {
            let tracer = obs::Tracer::new();
            let _ = hadoop_sim::run_job_traced(
                HadoopConfig::icpp2011(7, 7, 7),
                wordcount_spec(gb * GB),
                tracer.clone(),
            );
            let trace = tracer.take_trace();
            finish(h_name, &trace, Some(&tracer.metrics()));
        }
        if want(m_name) {
            let tracer = obs::Tracer::new();
            let _ = run_sim_mpid_traced(
                SimMpidConfig::icpp2011_fig6().with_auto_splits(gb * GB),
                wordcount_spec(gb * GB),
                tracer.clone(),
            );
            let trace = tracer.take_trace();
            finish(m_name, &trace, Some(&tracer.metrics()));
        }
    }

    let scale = if quick { 1 } else { 4 };
    if want("mpid_pipeline") {
        let pairs = zipf_pairs(11, scale * 524_288, 20_000);
        let trace = trace_pipe(&pipe_cfg(threads), WordCountPairs, pairs);
        finish("mpid_pipeline", &trace, None);
    }
    if want("pipe_large_values") {
        let n = scale * 512;
        let recs: Vec<(u64, Vec<u8>)> = (0..n as u64)
            .map(|i| {
                (
                    i.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    vec![(i % 251) as u8; 4096],
                )
            })
            .collect();
        let trace = trace_pipe(&pipe_cfg(threads), JavaSort, recs);
        finish("pipe_large_values", &trace, None);
    }
    if want("pipe_many_keys") {
        let n = scale * 131_072;
        let pairs: Vec<(String, u64)> = (0..n).map(|i| (rank_to_word(i), 1)).collect();
        let trace = trace_pipe(&pipe_cfg(threads), WordCountPairs, pairs);
        finish("pipe_many_keys", &trace, None);
    }
    if want("pipe_compressed") {
        let pairs = zipf_pairs(13, scale * 524_288, 20_000);
        let mut cfg = pipe_cfg(threads);
        cfg.compress = true;
        let trace = trace_pipe(&cfg, WordCountPairs, pairs);
        finish("pipe_compressed", &trace, None);
    }
    if want("pipe_extmerge") {
        let pairs = zipf_pairs(17, scale * 524_288, 20_000);
        let mut cfg = pipe_cfg(threads);
        cfg.reduce_budget_bytes = Some(256 * 1024);
        let trace = trace_pipe(&cfg, WordCountPairs, pairs);
        finish("pipe_extmerge", &trace, None);
    }

    if emitted == 0 {
        println!("profile: no profileable bench matches the filter");
    }
}

/// One traced real-pipeline run (same shapes as the timed section); returns
/// the merged per-rank trace.
fn trace_pipe<A>(cfg: &MpidEngineConfig, app: A, records: Vec<(A::InKey, A::InVal)>) -> obs::Trace
where
    A: MapReduceApp,
    A::InKey: Kv + Clone + Send + Sync + 'static,
    A::InVal: Kv + Clone + Send + Sync + 'static,
{
    let input = Arc::new(VecInput::round_robin(records, 8));
    let sink = obs::SharedTrace::new();
    let _ = run_mpid_traced(cfg, Arc::new(app), input, sink.clone());
    sink.take_trace()
}

/// Per-bench Chrome-trace path: `base.json` + bench `b` → `base.b.json`.
fn trace_file(base: &str, bench: &str) -> String {
    match base.strip_suffix(".json") {
        Some(stem) => format!("{stem}.{bench}.json"),
        None => format!("{base}.{bench}.json"),
    }
}

/// Run one pipeline shape: materialize the input into split vectors (and
/// total its encoded wire bytes) before the timer, then time the real
/// threads-as-ranks job end to end.
fn pipe_shape<A>(
    name: &'static str,
    cfg: &MpidEngineConfig,
    app: A,
    records: Vec<(A::InKey, A::InVal)>,
) -> Bench
where
    A: MapReduceApp,
    A::InKey: Kv + Clone + Send + Sync + 'static,
    A::InVal: Kv + Clone + Send + Sync + 'static,
{
    let wire_bytes: u64 = records
        .iter()
        .map(|(k, v)| (k.wire_size() + v.wire_size()) as u64)
        .sum();
    let input = Arc::new(VecInput::round_robin(records, 8));
    let t0 = Instant::now();
    let job = run_mpid(cfg, Arc::new(app), input);
    let wall = t0.elapsed().as_secs_f64();
    let mbps = wire_bytes as f64 / wall / 1e6;
    println!(
        "{name:<17} {:>10}  {} wire, {mbps:.1} MB/s, {} output pairs",
        fmt_secs(wall),
        mpid_bench::fmt_size(wire_bytes),
        job.output.len()
    );
    Bench {
        name,
        wall_s: wall,
        metrics: vec![
            ("mb_per_sec", mbps),
            ("output_pairs", job.output.len() as f64),
        ],
    }
}

/// Event-loop microbench: `total` flows churned through the network driver
/// as four disjoint host-pair chains (so the scoped solver has component
/// structure to exploit). Every completion starts the next flow, keeping
/// the reallocation path hot. Returns (wall seconds, solver counters).
fn flow_churn(total: u64, force_full: bool) -> (f64, SolverStats) {
    struct St {
        net: Net<St>,
        to_start: u64,
        seq: u64,
    }
    impl HasNet for St {
        fn net(&mut self) -> &mut Net<St> {
            &mut self.net
        }
    }
    fn launch(s: &mut St, sc: &mut Scheduler<St>) {
        if s.to_start == 0 {
            return;
        }
        s.to_start -= 1;
        let i = s.seq;
        s.seq += 1;
        // Four disjoint host pairs out of the 8-node testbed; alternate
        // direction so both NIC sides stay loaded.
        let pair = (i % 4) as usize;
        let (src, dst) = if (i / 4).is_multiple_of(2) {
            (HostId(2 * pair), HostId(2 * pair + 1))
        } else {
            (HostId(2 * pair + 1), HostId(2 * pair))
        };
        let bytes = 16_384 + (i % 7) * 4_096;
        Net::transfer(s, sc, src, dst, bytes, launch);
    }

    netsim::set_force_full_default(force_full);
    let mut sim = Sim::new(St {
        net: Net::new(Cluster::new(ClusterSpec::icpp2011_testbed())),
        to_start: total,
        seq: 0,
    });
    // 64 concurrent chains (16 per host pair).
    sim.schedule(SimTime::ZERO, |s: &mut St, sc| {
        for _ in 0..64 {
            launch(s, sc);
        }
    });
    let t0 = Instant::now();
    sim.run();
    let wall = t0.elapsed().as_secs_f64();
    netsim::set_force_full_default(false);
    assert_eq!(sim.state.net.flows_completed(), total);
    (wall, sim.state.net.solver_stats())
}

/// One traced 100 GB MPI-D sim run; returns (wall seconds, resource sweeps).
fn traced_mpid_100gb(force_full: bool) -> (f64, u64) {
    netsim::set_force_full_default(force_full);
    let tracer = obs::Tracer::new();
    let t0 = Instant::now();
    let _ = run_sim_mpid_traced(
        SimMpidConfig::icpp2011_fig6().with_auto_splits(100 * GB),
        wordcount_spec(100 * GB),
        tracer.clone(),
    );
    let wall = t0.elapsed().as_secs_f64();
    netsim::set_force_full_default(false);
    let sweeps = tracer
        .metrics()
        .counter(obs::names::M_NET_SOLVER_RESOURCES_SWEPT);
    (wall, sweeps)
}

/// Hand-rolled `BENCH.json` (schema `mpid-bench/1`): no JSON dependency in
/// the workspace, and the shape is flat enough that formatting it directly
/// keeps the file byte-stable for diffing.
fn write_report(path: &str, quick: bool, benches: &[Bench]) {
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"mpid-bench/1\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str("  \"benches\": [\n");
    for (i, b) in benches.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_s\": {:.6}, \"metrics\": {{",
            b.name, b.wall_s
        ));
        for (j, (k, v)) in b.metrics.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{k}\": {v:.6}"));
        }
        s.push_str("}}");
        if i + 1 < benches.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s).expect("write BENCH.json");
}
