//! Fault-tolerance figure (no counterpart in the paper, which lists fault
//! tolerance as an open MPI problem in section VI): WordCount under a
//! deterministic fault-plan grid — crash-free, one node crash, a CPU
//! straggler, and a partition that heals — on the same simulated testbed as
//! Figure 6.
//!
//! Three stacks run every scenario: Hadoop (speculative re-execution and
//! crash recovery on), plain MPI-D (the paper's prototype: no fault
//! tolerance, a lost rank loses the job), and MPI-D with barrier
//! checkpointing every N splits. Because the stacks' crash-free makespans
//! differ by ~25x, each fault is anchored at the same *relative* point of
//! each stack's own crash-free run (e.g. the crash lands at 40% of the
//! job, whichever stack is running). The table reports each stack's
//! makespan and its degradation vs. its own baseline.
//!
//! `--check` shrinks the input, re-runs the grid and asserts bit-identical
//! reports (determinism smoke), and drives the *real* (threads-as-ranks)
//! checkpoint/restart engine through an injected rank crash, asserting the
//! recovered WordCount output is correct. `--trace <path>` writes Chrome
//! traces of the crash scenario (checkpointed MPI-D, plus the Hadoop run as
//! a sibling file) with fault injections and checkpoint/restart instants.

use desim::SimTime;
use faults::FaultPlan;
use hadoop_sim::{run_job_faulty, run_job_faulty_traced, HadoopConfig, JobReport};
use mapred::{
    run_local, run_mpid_checkpointed, run_sim_mpid_ft, run_sim_mpid_ft_traced, FtOutcome,
    MpidEngineConfig, MpidFtMode, SimMpidConfig, SimMpidFtReport, TextInput,
};
use mpi_rt::RankFault;
use mpid_bench::{fmt_secs, GB};
use netsim::JobSpec;
use std::sync::Arc;
use workloads::wordcount_spec;

/// Checkpoint barrier interval (input splits per superstep).
const CKPT_SPLITS: usize = 8;

const SCENARIOS: [&str; 4] = [
    "crash-free",
    "1 node crash",
    "cpu straggler",
    "partition+heal",
];

struct Row {
    name: &'static str,
    hadoop: JobReport,
    unchecked: SimMpidFtReport,
    ckpt: SimMpidFtReport,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().any(|a| a == "--check");
    let trace_path = mpid_bench::arg_value(&args, "--trace");
    let input = if check { GB / 4 } else { GB };
    let spec = wordcount_spec(input);

    println!(
        "Fault tolerance — WordCount {} under injected faults",
        mpid_bench::fmt_size(input)
    );
    println!("(8-node simulated testbed; Hadoop 2/7 slots, 16 MB blocks vs MPI-D 49+1 ranks;");
    println!(" each fault lands at the same relative point of each stack's own run)");
    println!();

    let rows = run_grid(&spec);
    print_table(&rows);
    assert_shape(&rows);

    if let Some(path) = &trace_path {
        let ckpt_base = completed(&rows[0].ckpt);
        let tracer = obs::Tracer::new();
        run_sim_mpid_ft_traced(
            mpid_cfg(input),
            spec.clone(),
            plan_for(1, ckpt_base),
            MpidFtMode::Checkpoint {
                interval_splits: CKPT_SPLITS,
            },
            tracer.clone(),
        );
        // The Hadoop side of the same scenario, for lane-by-lane comparison
        // (separate file: the two simulators share pid numbering).
        let h_tracer = obs::Tracer::new();
        run_job_faulty_traced(
            hadoop_cfg(),
            spec.clone(),
            plan_for(1, rows[0].hadoop.makespan.as_secs_f64()),
            h_tracer.clone(),
        );
        mpid_bench::emit_trace(
            &tracer,
            path,
            obs::names::CAT_MPID_PHASE,
            "checkpointed MPI-D under one node crash",
        );
        let h_path = format!("{path}.hadoop.json");
        mpid_bench::emit_trace(
            &h_tracer,
            &h_path,
            obs::names::CAT_HADOOP_PHASE,
            "Hadoop under one node crash",
        );
    }

    if check {
        println!();
        println!("check — grid determinism (every report bit-identical on re-run)");
        let again = run_grid(&spec);
        for (a, b) in rows.iter().zip(&again) {
            assert_eq!(a.hadoop.makespan, b.hadoop.makespan, "{}", a.name);
            assert_eq!(a.hadoop.maps_reexecuted, b.hadoop.maps_reexecuted);
            assert_eq!(a.unchecked, b.unchecked, "{}", a.name);
            assert_eq!(a.ckpt, b.ckpt, "{}", a.name);
        }
        println!("  {} scenarios x 3 stacks: deterministic", rows.len());
        run_real_checkpoint_check();
    }
}

fn hadoop_cfg() -> HadoopConfig {
    // 2 map slots per worker and 16 MB blocks: several map waves, so map
    // outputs commit progressively and a mid-job crash actually destroys
    // committed intermediate data (the recovery path this figure studies)
    // instead of only killing in-flight attempts.
    let mut cfg = HadoopConfig::icpp2011(2, 7, 7);
    cfg.block_bytes = 16 << 20;
    cfg
}

fn mpid_cfg(input: u64) -> SimMpidConfig {
    SimMpidConfig::icpp2011_fig6().with_auto_splits(input)
}

/// The scenario's fault plan, anchored to one stack's crash-free makespan
/// (seconds): the crash lands at 60% of the job (late enough that committed
/// Hadoop map output is destroyed, not just in-flight attempts), the
/// straggler covers the whole run, the partition opens at 40% and heals 20%
/// later.
fn plan_for(scenario: usize, own_makespan: f64) -> FaultPlan {
    let mid = SimTime::from_secs_f64(own_makespan * 0.4);
    match scenario {
        0 => FaultPlan::none(),
        1 => FaultPlan::builder()
            .crash(SimTime::from_secs_f64(own_makespan * 0.6), 3)
            .build(),
        2 => FaultPlan::builder()
            .straggler(
                SimTime::ZERO,
                2,
                4.0,
                SimTime::from_secs_f64(own_makespan * 4.0),
            )
            .build(),
        3 => FaultPlan::builder()
            .partition(mid, 4, 7, mid + SimTime::from_secs_f64(own_makespan * 0.2))
            .build(),
        _ => unreachable!("unknown scenario"),
    }
}

fn completed(r: &SimMpidFtReport) -> f64 {
    match r.outcome {
        FtOutcome::Completed { makespan } => makespan.as_secs_f64(),
        FtOutcome::Failed { .. } => unreachable!("baseline runs are fault-free"),
    }
}

fn run_grid(spec: &JobSpec) -> Vec<Row> {
    let input = spec.input_bytes;
    let ckpt_mode = MpidFtMode::Checkpoint {
        interval_splits: CKPT_SPLITS,
    };
    // Crash-free baselines anchor every stack's fault times.
    let baseline = Row {
        name: SCENARIOS[0],
        hadoop: run_job_faulty(hadoop_cfg(), spec.clone(), FaultPlan::none()),
        unchecked: run_sim_mpid_ft(
            mpid_cfg(input),
            spec.clone(),
            FaultPlan::none(),
            MpidFtMode::Unchecked,
        ),
        ckpt: run_sim_mpid_ft(mpid_cfg(input), spec.clone(), FaultPlan::none(), ckpt_mode),
    };
    let h0 = baseline.hadoop.makespan.as_secs_f64();
    let m0 = completed(&baseline.unchecked);
    let c0 = completed(&baseline.ckpt);

    let mut rows = vec![baseline];
    for (i, name) in SCENARIOS.iter().enumerate().skip(1) {
        rows.push(Row {
            name,
            hadoop: run_job_faulty(hadoop_cfg(), spec.clone(), plan_for(i, h0)),
            unchecked: run_sim_mpid_ft(
                mpid_cfg(input),
                spec.clone(),
                plan_for(i, m0),
                MpidFtMode::Unchecked,
            ),
            ckpt: run_sim_mpid_ft(mpid_cfg(input), spec.clone(), plan_for(i, c0), ckpt_mode),
        });
    }
    rows
}

fn outcome_cell(r: &SimMpidFtReport, baseline_secs: Option<f64>) -> String {
    match r.outcome {
        FtOutcome::Completed { makespan } => match baseline_secs {
            Some(b) if b > 0.0 => format!(
                "{} ({:+.0}%)",
                fmt_secs(makespan.as_secs_f64()),
                100.0 * (makespan.as_secs_f64() / b - 1.0)
            ),
            _ => fmt_secs(makespan.as_secs_f64()),
        },
        FtOutcome::Failed { at, lost_host } => {
            format!("LOST host{} @{}", lost_host, fmt_secs(at.as_secs_f64()))
        }
    }
}

fn print_table(rows: &[Row]) {
    let header = format!(
        "{:<15}  {:>18}  {:>20}  {:>22}",
        "scenario", "Hadoop", "MPI-D (plain)", "MPI-D (checkpoint)"
    );
    println!("{header}");
    mpid_bench::rule(&header);
    let h0 = rows[0].hadoop.makespan.as_secs_f64();
    let m0 = completed(&rows[0].unchecked);
    let c0 = completed(&rows[0].ckpt);
    for (i, row) in rows.iter().enumerate() {
        let base = i > 0;
        let h = row.hadoop.makespan.as_secs_f64();
        let h_cell = if row.hadoop.job_failed {
            "JOB FAILED".to_string()
        } else if base {
            format!("{} ({:+.0}%)", fmt_secs(h), 100.0 * (h / h0 - 1.0))
        } else {
            fmt_secs(h)
        };
        println!(
            "{:<15}  {:>18}  {:>20}  {:>22}",
            row.name,
            h_cell,
            outcome_cell(&row.unchecked, base.then_some(m0)),
            outcome_cell(&row.ckpt, base.then_some(c0)),
        );
    }
    println!();
    let crash = &rows[1];
    println!(
        "recovery detail (1 node crash): Hadoop re-executed {} maps, restarted {} reduces; \
         checkpointed MPI-D replayed {} superstep(s), {} checkpoint barrier overhead",
        crash.hadoop.maps_reexecuted,
        crash.hadoop.restarted_reduces,
        crash.ckpt.restarts,
        fmt_secs(crash.ckpt.checkpoint_overhead.as_secs_f64()),
    );
}

/// The reproduction claims: Hadoop absorbs every scenario with bounded
/// slowdown, the paper's plain MPI-D loses the job to the crash, and the
/// checkpointed variant completes everywhere.
fn assert_shape(rows: &[Row]) {
    let h0 = rows[0].hadoop.makespan.as_secs_f64();
    for row in rows {
        assert!(
            !row.hadoop.job_failed,
            "Hadoop must absorb '{}' via re-execution",
            row.name
        );
        assert!(
            row.hadoop.makespan.as_secs_f64() < h0 * 5.0 + 60.0,
            "Hadoop slowdown under '{}' must stay bounded",
            row.name
        );
        assert!(
            matches!(row.ckpt.outcome, FtOutcome::Completed { .. }),
            "checkpointed MPI-D must complete '{}'",
            row.name
        );
    }
    assert!(
        matches!(rows[1].unchecked.outcome, FtOutcome::Failed { .. }),
        "plain MPI-D must lose the job to a node crash"
    );
    assert!(
        rows[1].hadoop.maps_reexecuted > 0,
        "the crash must have destroyed committed map output"
    );
    assert_eq!(rows[1].ckpt.restarts, 1);
    for row in &rows[2..] {
        assert!(
            matches!(row.unchecked.outcome, FtOutcome::Completed { .. }),
            "benign faults must not fail plain MPI-D ('{}')",
            row.name
        );
    }
    println!();
    println!(
        "shape: Hadoop completes 4/4 scenarios, plain MPI-D {}/4 \
         (job lost to the crash), checkpointed MPI-D 4/4",
        1 + rows[2..]
            .iter()
            .filter(|r| matches!(r.unchecked.outcome, FtOutcome::Completed { .. }))
            .count()
    );
}

/// Drive the real threads-as-ranks checkpoint/restart engine through an
/// injected rank crash and prove the recovered output correct.
fn run_real_checkpoint_check() {
    println!();
    println!("check — real MPI-D checkpoint/restart under an injected rank crash");
    let docs: Vec<String> = (0..12)
        .map(|s| {
            (0..200)
                .map(|i| format!("w{} common", (s * 13 + i * 7) % 97))
                .collect::<Vec<_>>()
                .join("\n")
        })
        .collect();
    let input = Arc::new(TextInput::new(docs));
    let app = Arc::new(workloads::WordCount);
    let mut expected = run_local(&*app, &*input);
    expected.sort();

    let engine = MpidEngineConfig::with_workers(3, 2);
    let crash = vec![RankFault {
        rank: 2,
        after_ops: 6,
    }];
    let (out, stats) = run_mpid_checkpointed(&engine, 3, crash, app, input);
    let mut got = out;
    got.sort();
    assert_eq!(got, expected, "recovered output must match the reference");
    assert!(stats.restarts >= 1, "the crash must force a replay");
    println!(
        "  rank 2 crashed and was restarted: {} supersteps, {} restart(s), \
         {} checkpointed values, output correct ({} words)",
        stats.supersteps,
        stats.restarts,
        stats.checkpointed_values,
        got.len()
    );
}
