//! Figure 2 (a/b/c) — point-to-point message latency: Hadoop RPC vs MPICH2,
//! message sizes 1 B to 64 MB (one-way = ping-pong / 2).
//!
//! This binary evaluates the calibrated protocol models on the simulated
//! GbE testbed (Figures 2–3 are the *calibration inputs* of the
//! reproduction — see DESIGN.md §5 — so this is a fidelity check that the
//! models reproduce the paper's anchor ratios: 2.49× at 1 B, 15.1× at 1 KB,
//! >100× beyond 256 KB, 123× at 1 MB).
//!
//! For latency curves of the *real* Rust reimplementations on loopback TCP
//! (shape-only, modern hardware) see `cargo bench -p mpid-bench`.

use mpid_bench::{fmt_secs, size_sweep};
use netsim::{HadoopRpcModel, MpiModel, Transport};

fn main() {
    let mpi = MpiModel::default();
    let rpc = HadoopRpcModel::default();

    println!("Figure 2 — message latency, Hadoop RPC vs MPICH2 (simulated GbE testbed)");
    println!();
    let header = format!(
        "{:>8}  {:>12}  {:>12}  {:>8}   {}",
        "size", "MPICH2", "Hadoop RPC", "ratio", "paper anchor"
    );
    println!("{header}");
    mpid_bench::rule(&header);

    for size in size_sweep() {
        let m = mpi.one_way_latency(size).as_secs_f64();
        let r = rpc.one_way_latency(size).as_secs_f64();
        let note = match size {
            1 => "2.49x (smallest gap)",
            1024 => "15.1x",
            262144 => ">100x beyond here",
            1048576 => "123x (biggest gap); 10.3ms vs 1259ms",
            67108864 => "572ms vs 56827ms",
            _ => "",
        };
        println!(
            "{:>8}  {:>12}  {:>12}  {:>7.1}x   {}",
            mpid_bench::fmt_size(size),
            fmt_secs(m),
            fmt_secs(r),
            r / m,
            note
        );
    }

    // Fidelity checks against the paper's reported anchors.
    let ratio =
        |b: u64| rpc.one_way_latency(b).as_secs_f64() / mpi.one_way_latency(b).as_secs_f64();
    assert!((ratio(1) - 2.49).abs() < 0.1, "1B anchor");
    assert!((ratio(1 << 10) - 15.1).abs() < 0.5, "1KB anchor");
    assert!(ratio(512 << 10) > 100.0, "256KB+ anchor");
    assert!(ratio(1 << 20) > 115.0, "1MB anchor");
    assert!(
        (mpi.one_way_latency(64 << 20).as_millis_f64() - 572.0).abs() < 5.0,
        "MPI 64MB anchor"
    );
    assert!(
        (rpc.one_way_latency(64 << 20).as_millis_f64() - 56_827.0).abs() < 500.0,
        "RPC 64MB anchor"
    );
    println!();
    println!("all paper anchors reproduced (1B: 2.49x, 1KB: 15.1x, >=256KB: >100x, 1MB: ~123x)");
}
