//! Shuffle-strategy figure (no counterpart in the paper, which ships every
//! spill directly): the pluggable shuffle seam swept across both simulated
//! stacks on rack topologies. The grid runs (stack × core oversubscription
//! × strategy) — Hadoop and MPI-D, a 2-rack cluster with a 1:1, 4:1 and
//! 8:1 oversubscribed core, and baseline / in-node combine / coded shuffle
//! at r ∈ {1, 2, 3} — on a WordCount-shaped job with four co-located map
//! tasks per host, reporting shuffle wire bytes, makespan and the map-phase
//! extent (where coded shuffle's replicated map work shows up) per cell.
//!
//! The claims the table supports:
//!
//! * in-node combining cuts wire volume on any multi-mapper-per-host shape
//!   (co-located spills share a vocabulary, so duplicate keys cross the
//!   wire once per host instead of once per mapper);
//! * coded shuffle cuts wire volume ≈ `r`× at the price of `r`× map work —
//!   a trade that only pays where the core is oversubscribed enough that
//!   the copy phase, not the map phase, bounds the job;
//! * strategies change bytes moved, never bytes meant: wire volume is
//!   topology-invariant, and `r = 1` coded is byte-identical to baseline.
//!
//! `--check` shrinks the input, re-runs the grid and asserts those claims
//! plus byte-identical tables across independent replays (determinism).

use desim::SimTime;
use hadoop_sim::HadoopConfig;
use mapred::{run_sim_mpid, SimMpidConfig};
use mpid_bench::{fmt_secs, fmt_size, GB, MB};
use netsim::{JobSpec, RackLayout, SimShuffle};

const STACKS: [&str; 2] = ["hadoop", "mpid"];
const OVERSUB: [f64; 3] = [1.0, 4.0, 8.0];
const HOSTS_PER_RACK: usize = 4;
const MAPPERS_PER_HOST: usize = 4;

fn strategies() -> [SimShuffle; 5] {
    [
        SimShuffle::Baseline,
        SimShuffle::InNodeCombine,
        SimShuffle::Coded { r: 1 },
        SimShuffle::Coded { r: 2 },
        SimShuffle::Coded { r: 3 },
    ]
}

struct Scale {
    input_bytes: u64,
}

impl Scale {
    fn full() -> Self {
        Scale {
            input_bytes: 4 * GB,
        }
    }

    fn check() -> Self {
        Scale { input_bytes: GB }
    }
}

/// One grid cell's results, with everything the assertions need.
struct Cell {
    stack: &'static str,
    oversub: f64,
    strategy: SimShuffle,
    wire_bytes: u64,
    makespan: SimTime,
    /// Map-phase extent (first map start to last map end) — coded
    /// shuffle's replicated map work lands here.
    map_extent: SimTime,
}

fn rack(oversub: f64) -> RackLayout {
    let nic = netsim::ClusterSpec::icpp2011_testbed().nic_bytes_per_sec;
    RackLayout::oversubscribed(HOSTS_PER_RACK, nic, oversub)
}

fn wc_spec(input_bytes: u64, strategy: SimShuffle) -> JobSpec {
    let mut spec = workloads::wordcount_spec(input_bytes);
    spec.shuffle = strategy;
    spec
}

/// The network-bound contrast workload: identity map, shuffle everything.
/// WordCount on this testbed is map-CPU-bound, so coded shuffle's wire
/// savings can never buy back its replicated map work there; sort is where
/// the copy volume, not the map CPU, bounds the job.
fn sort_spec(input_bytes: u64, strategy: SimShuffle) -> JobSpec {
    let mut spec = workloads::javasort_spec(input_bytes);
    spec.shuffle = strategy;
    spec
}

fn run_hadoop(scale: &Scale, oversub: f64, strategy: SimShuffle) -> Cell {
    let mut cfg = HadoopConfig::icpp2011(MAPPERS_PER_HOST, 4, 8);
    cfg.rack = Some(rack(oversub));
    cfg.straggler_prob = 0.0; // keep the strategy comparison noise-free
    cfg.speculative = false;
    let report = hadoop_sim::run_job(cfg, wc_spec(scale.input_bytes, strategy));
    let extent = report
        .phase_timeline()
        .iter()
        .find(|p| p.0 == "map")
        .map(|&(_, s, e)| e - s)
        .expect("map phase present");
    Cell {
        stack: "hadoop",
        oversub,
        strategy,
        wire_bytes: report.shuffle_wire_bytes,
        makespan: report.makespan,
        map_extent: extent,
    }
}

fn run_mpid(scale: &Scale, oversub: f64, strategy: SimShuffle) -> Cell {
    run_mpid_spec(oversub, strategy, wc_spec(scale.input_bytes, strategy))
}

fn run_mpid_spec(oversub: f64, strategy: SimShuffle, spec: JobSpec) -> Cell {
    // 7 worker hosts × 4 co-located mapper processes, mirroring the Hadoop
    // side's slot shape so the in-node combine sees the same co-location.
    let mut cfg = SimMpidConfig::icpp2011_fig6();
    cfg.n_mappers = 7 * MAPPERS_PER_HOST;
    cfg.n_reducers = 4;
    cfg.rack = Some(rack(oversub));
    let cfg = cfg.with_auto_splits(spec.input_bytes);
    let report = run_sim_mpid(cfg, spec);
    let map_start = report
        .mapper_spans
        .iter()
        .map(|&(s, _)| s)
        .min()
        .unwrap_or(SimTime::ZERO);
    Cell {
        stack: "mpid",
        oversub,
        strategy,
        wire_bytes: report.wire_bytes,
        makespan: report.makespan,
        map_extent: report.map_finish - map_start,
    }
}

fn run_grid(scale: &Scale) -> Vec<Cell> {
    let mut cells = Vec::new();
    for stack in STACKS {
        for &oversub in &OVERSUB {
            for strategy in strategies() {
                cells.push(match stack {
                    "hadoop" => run_hadoop(scale, oversub, strategy),
                    _ => run_mpid(scale, oversub, strategy),
                });
            }
        }
    }
    cells
}

/// Baseline cell of the same (stack, oversubscription) column.
fn baseline_of<'a>(cells: &'a [Cell], c: &Cell) -> &'a Cell {
    cells
        .iter()
        .find(|b| {
            b.stack == c.stack && b.oversub == c.oversub && b.strategy == SimShuffle::Baseline
        })
        .expect("baseline cell present")
}

fn table_lines(cells: &[Cell]) -> Vec<String> {
    let mut lines = Vec::new();
    for c in cells {
        let base = baseline_of(cells, c);
        lines.push(format!(
            "{:<6}  {:>4.0}:1  {:<10}  {:>9}  {:>6.1}%  {:>9}  {:>9}",
            c.stack,
            c.oversub,
            c.strategy.label(),
            fmt_size(c.wire_bytes),
            100.0 * c.wire_bytes as f64 / base.wire_bytes as f64,
            fmt_secs(c.makespan.as_secs_f64()),
            fmt_secs(c.map_extent.as_secs_f64()),
        ));
    }
    lines
}

fn print_table(cells: &[Cell]) {
    let header = format!(
        "{:<6}  {:>6}  {:<10}  {:>9}  {:>7}  {:>9}  {:>9}",
        "stack", "core", "strategy", "wire", "vs base", "makespan", "map"
    );
    println!("{header}");
    mpid_bench::rule(&header);
    for line in table_lines(cells) {
        println!("{line}");
    }
}

/// The figure's claims, asserted on every run (not just `--check`).
fn assert_shape(cells: &[Cell]) {
    for c in cells {
        let tag = format!("{}/{}:1/{}", c.stack, c.oversub, c.strategy.label());
        assert!(c.wire_bytes > 0, "{tag}: no wire traffic");
        assert!(c.makespan > SimTime::ZERO, "{tag}: empty run");
        let base = baseline_of(cells, c);
        match c.strategy {
            // In-node combining must pay off on a 4-mappers-per-host shape.
            SimShuffle::InNodeCombine => assert!(
                c.wire_bytes < base.wire_bytes,
                "{tag}: in-node combine did not cut wire volume \
                 ({} vs {})",
                c.wire_bytes,
                base.wire_bytes
            ),
            // r = 1 coded is the degenerate strategy: baseline volumes.
            SimShuffle::Coded { r: 1 } => assert_eq!(
                c.wire_bytes, base.wire_bytes,
                "{tag}: degenerate coded drifted from baseline"
            ),
            // r ≥ 2 cuts wire ≈ r× and stretches the map phase.
            SimShuffle::Coded { r } => {
                let ratio = c.wire_bytes as f64 / base.wire_bytes as f64;
                let want = 1.0 / r as f64;
                assert!(
                    (ratio - want).abs() < 0.05,
                    "{tag}: wire ratio {ratio:.3}, expected ≈ {want:.3}"
                );
                assert!(
                    c.map_extent > base.map_extent,
                    "{tag}: replicated map work did not stretch the map phase"
                );
            }
            SimShuffle::Baseline => {}
        }
    }
    // Strategies change bytes moved, never bytes meant: each strategy's
    // wire volume is identical across core oversubscription levels.
    for stack in STACKS {
        for strategy in strategies() {
            let wires: Vec<u64> = cells
                .iter()
                .filter(|c| c.stack == stack && c.strategy == strategy)
                .map(|c| c.wire_bytes)
                .collect();
            assert!(
                wires.windows(2).all(|w| w[0] == w[1]),
                "{stack}/{}: wire volume varies with topology: {wires:?}",
                strategy.label()
            );
        }
    }
    println!();
    println!(
        "shape: {} cells; in-node combine and coded r>=2 cut wire volume in \
         every column, r=1 coded is byte-identical to baseline, and wire \
         volume is topology-invariant",
        cells.len()
    );
}

/// Where coded shuffle wins: WordCount above is map-CPU-bound, so `r`×
/// map work always loses there — the grid shows the wire savings but the
/// makespan column says "don't". On a network-bound sort (identity map,
/// shuffle everything) over an oversubscribed core, halving the wire
/// volume halves the binding resource, and coded r = 2 must beat its own
/// baseline's makespan.
fn run_coded_wins(scale: &Scale) -> Vec<Cell> {
    let mut cells = Vec::new();
    for &oversub in &[1.0, 8.0] {
        for strategy in [SimShuffle::Baseline, SimShuffle::Coded { r: 2 }] {
            cells.push(run_mpid_spec(
                oversub,
                strategy,
                sort_spec(scale.input_bytes, strategy),
            ));
        }
    }
    println!();
    println!("where coded shuffle wins — network-bound sort, mpid stack:");
    print_table(&cells);
    let pick = |oversub: f64, strategy: SimShuffle| {
        cells
            .iter()
            .find(|c| c.oversub == oversub && c.strategy == strategy)
            .expect("cell present")
    };
    let base = pick(8.0, SimShuffle::Baseline);
    let coded = pick(8.0, SimShuffle::Coded { r: 2 });
    assert!(
        coded.makespan < base.makespan,
        "coded r=2 on an 8:1 core should beat the network-bound baseline \
         ({:?} vs {:?})",
        coded.makespan,
        base.makespan
    );
    println!();
    println!(
        "  mpid sort @ 8:1 core: coded r=2 makespan {} beats baseline {} \
         (the same trade loses on CPU-bound WordCount above)",
        fmt_secs(coded.makespan.as_secs_f64()),
        fmt_secs(base.makespan.as_secs_f64()),
    );
    cells
}

fn run_check(scale: &Scale, cells: &[Cell], coded_wins: &[Cell]) {
    println!();
    println!("check — determinism (byte-identical tables on re-run)");
    let again = run_grid(scale);
    assert_eq!(
        table_lines(cells),
        table_lines(&again),
        "grid drifted across independent replays"
    );
    let wins_again: Vec<Cell> = [1.0, 8.0]
        .iter()
        .flat_map(|&o| {
            [SimShuffle::Baseline, SimShuffle::Coded { r: 2 }]
                .into_iter()
                .map(move |st| run_mpid_spec(o, st, sort_spec(scale.input_bytes, st)))
        })
        .collect();
    assert_eq!(
        table_lines(coded_wins),
        table_lines(&wins_again),
        "coded-wins table drifted across independent replays"
    );
    println!(
        "  {} cells: byte-identical across replays",
        cells.len() + coded_wins.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().any(|a| a == "--check");
    let scale = if check { Scale::check() } else { Scale::full() };

    println!(
        "Shuffle strategies under rack topologies — {} WordCount, \
         2 racks x {} hosts, {} map tasks per host",
        fmt_size(scale.input_bytes),
        HOSTS_PER_RACK,
        MAPPERS_PER_HOST,
    );
    println!(
        "(strategy resolved per job through SimShuffle::resolve; wire = \
         shuffle payload that crossed disk/network after strategy savings; \
         input {} MB per map wave)",
        scale.input_bytes / MB / 64,
    );
    println!();

    let cells = run_grid(&scale);
    print_table(&cells);
    assert_shape(&cells);
    let coded_wins = run_coded_wins(&scale);

    if check {
        run_check(&scale, &cells, &coded_wins);
    }
}
