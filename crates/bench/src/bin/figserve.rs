//! Serving figure (no counterpart in the paper, which benchmarks one job at
//! a time): a multi-tenant stream of heterogeneous jobs — WordCount / sort /
//! index / grep, zipf-ish sizes — served by a long-lived master on a
//! rack-aware 120-node cluster with a 4:1 oversubscribed core. The grid
//! sweeps (scheduler × stack × load): FIFO, fair-share and capacity
//! admission over the Hadoop and MPI-D backends at a light and a heavy
//! arrival rate, reporting jobs/sec, p50/p95/p99 job latency and cluster
//! utilization per point. A final fault-under-load point replays the heavy
//! stream while a node crashes and a rack uplink partitions and heals,
//! showing each stack's recovery bill (Hadoop phase restarts vs MPI-D
//! whole-job requeues) under contention.
//!
//! `--check` shrinks the cluster and stream, re-runs the grid and asserts
//! byte-identical reports (schedule determinism) plus Hadoop-vs-MPI-D
//! job-output identity on every point.

use desim::SimTime;
use faults::FaultPlan;
use mpid_bench::fmt_secs;
use netsim::SimShuffle;
use serve::{
    arrival_stream, hadoop_backend, mpid_backend, run_serve, Arrival, ArrivalConfig, Capacity,
    FairShare, Fifo, JobBackend, Scheduler, ServeConfig, ServeReport,
};

const SEED: u64 = 0x5E12;
const SCHEDULERS: [&str; 3] = ["fifo", "fair", "capacity"];
const STACKS: [&str; 2] = ["hadoop", "mpid"];
const TENANTS: u32 = 3;

/// Cluster + stream scale: the full figure vs the `--check` smoke.
struct Scale {
    n_racks: usize,
    hosts_per_rack: usize,
    n_jobs: usize,
    light_gap: SimTime,
    heavy_gap: SimTime,
    /// Fault times for the fault-under-load point.
    crash_at: SimTime,
    cut_at: SimTime,
    heal_at: SimTime,
    /// Shuffle strategy stamped on every job in the stream (`--shuffle`).
    shuffle: SimShuffle,
}

impl Scale {
    fn full() -> Self {
        Scale {
            n_racks: 5,
            hosts_per_rack: 24,
            n_jobs: 60,
            light_gap: SimTime::from_secs(20),
            heavy_gap: SimTime::from_secs(2),
            crash_at: SimTime::from_secs(30),
            cut_at: SimTime::from_secs(90),
            heal_at: SimTime::from_secs(210),
            shuffle: SimShuffle::Baseline,
        }
    }

    fn check() -> Self {
        Scale {
            n_racks: 3,
            hosts_per_rack: 8,
            n_jobs: 16,
            light_gap: SimTime::from_secs(15),
            heavy_gap: SimTime::from_secs(2),
            crash_at: SimTime::from_secs(8),
            cut_at: SimTime::from_secs(20),
            heal_at: SimTime::from_secs(60),
            shuffle: SimShuffle::Baseline,
        }
    }

    fn hosts(&self) -> usize {
        self.n_racks * self.hosts_per_rack
    }

    fn cluster(&self) -> ServeConfig {
        ServeConfig::rackscale(self.n_racks, self.hosts_per_rack, 4.0)
    }

    fn stream(&self, heavy: bool) -> Vec<Arrival> {
        let gap = if heavy {
            self.heavy_gap
        } else {
            self.light_gap
        };
        let mut cfg = ArrivalConfig::new(self.n_jobs, gap);
        cfg.n_tenants = TENANTS;
        cfg.shuffle = self.shuffle;
        arrival_stream(SEED, &cfg)
    }

    /// The fault-under-load plan: one node crash in rack 1 (allocation
    /// fills it first, so it is busy early), then the rest of rack 1's
    /// uplink partitions away from the master and heals.
    fn fault_plan(&self) -> FaultPlan {
        let crash_host = self.hosts_per_rack + 1;
        let rack1: Vec<usize> = (self.hosts_per_rack..2 * self.hosts_per_rack)
            .filter(|&h| h != crash_host)
            .collect();
        FaultPlan::builder()
            .crash(self.crash_at, crash_host)
            .partition_set(self.cut_at, 0, &rack1, self.heal_at)
            .build()
    }
}

fn scheduler_for(name: &str) -> Box<dyn Scheduler> {
    match name {
        "fifo" => Box::new(Fifo),
        "fair" => Box::new(FairShare),
        "capacity" => Box::new(Capacity { n_tenants: TENANTS }),
        _ => unreachable!("unknown scheduler"),
    }
}

fn backend_for(name: &str) -> Box<dyn JobBackend> {
    match name {
        "hadoop" => hadoop_backend(),
        "mpid" => mpid_backend(),
        _ => unreachable!("unknown stack"),
    }
}

struct Point {
    scheduler: &'static str,
    stack: &'static str,
    load: &'static str,
    report: ServeReport,
}

fn run_grid(scale: &Scale) -> Vec<Point> {
    let calm = FaultPlan::none();
    let mut points = Vec::new();
    for load in ["light", "heavy"] {
        let stream = scale.stream(load == "heavy");
        for scheduler in SCHEDULERS {
            for stack in STACKS {
                let report = run_serve(
                    &scale.cluster(),
                    scheduler_for(scheduler),
                    backend_for(stack),
                    &stream,
                    &calm,
                    None,
                );
                points.push(Point {
                    scheduler,
                    stack,
                    load,
                    report,
                });
            }
        }
    }
    points
}

fn run_fault_points(scale: &Scale) -> Vec<Point> {
    let stream = scale.stream(true);
    let plan = scale.fault_plan();
    STACKS
        .iter()
        .map(|stack| Point {
            scheduler: "fair",
            stack,
            load: "heavy+faults",
            report: run_serve(
                &scale.cluster(),
                scheduler_for("fair"),
                backend_for(stack),
                &stream,
                &plan,
                None,
            ),
        })
        .collect()
}

fn print_table(points: &[Point]) {
    let header = format!(
        "{:<9}  {:<6}  {:<12}  {:>8}  {:>9}  {:>9}  {:>9}  {:>5}  {:>9}  {:>8}",
        "scheduler",
        "stack",
        "load",
        "jobs/sec",
        "p50",
        "p95",
        "p99",
        "util",
        "recovered",
        "restarts"
    );
    println!("{header}");
    mpid_bench::rule(&header);
    for p in points {
        let r = &p.report;
        println!(
            "{:<9}  {:<6}  {:<12}  {:>8.4}  {:>9}  {:>9}  {:>9}  {:>4.0}%  {:>9}  {:>8}",
            p.scheduler,
            p.stack,
            p.load,
            r.jobs_per_sec(),
            fmt_secs(r.latency_quantile(0.50).as_secs_f64()),
            fmt_secs(r.latency_quantile(0.95).as_secs_f64()),
            fmt_secs(r.latency_quantile(0.99).as_secs_f64()),
            100.0 * r.utilization(),
            r.recovered,
            r.restarts,
        );
    }
}

/// The figure's claims: every point completes the whole stream, utilization
/// is sane, heavy load stresses latency at least as hard as light load, and
/// under faults each stack pays its own recovery bill.
fn assert_shape(points: &[Point], faulted: &[Point], n_jobs: usize) {
    for p in points.iter().chain(faulted) {
        let r = &p.report;
        let tag = format!("{}/{}/{}", p.scheduler, p.stack, p.load);
        assert_eq!(r.jobs.len(), n_jobs, "{tag}: stream incomplete");
        let u = r.utilization();
        assert!(u > 0.0 && u <= 1.0, "{tag}: utilization {u} out of range");
        assert!(r.jobs_per_sec() > 0.0, "{tag}: zero throughput");
    }
    // Per (scheduler, stack): heavy p99 is no better than light p99 (queueing
    // under contention can only hurt).
    for s in SCHEDULERS {
        for st in STACKS {
            let find = |load: &str| {
                &points
                    .iter()
                    .find(|p| p.scheduler == s && p.stack == st && p.load == load)
                    .expect("grid point present")
                    .report
            };
            let light = find("light").latency_quantile(0.99);
            let heavy = find("heavy").latency_quantile(0.99);
            assert!(
                heavy >= light,
                "{s}/{st}: heavy p99 {heavy:?} beats light p99 {light:?}"
            );
        }
    }
    let h = &faulted[0].report;
    let m = &faulted[1].report;
    assert!(
        h.recovered > 0,
        "hadoop under faults must phase-restart at least once"
    );
    assert_eq!(h.restarts, 0, "hadoop never requeues whole jobs");
    assert!(
        m.restarts > 0,
        "mpid under faults must requeue at least one job"
    );
    assert_eq!(m.recovered, 0, "mpid never phase-restarts");
    println!();
    println!(
        "shape: {} grid points + 2 fault points complete all {} jobs; \
         under faults Hadoop phase-restarted {}x, MPI-D requeued {} job(s)",
        points.len(),
        n_jobs,
        h.recovered,
        m.restarts,
    );
}

fn run_check(scale: &Scale) {
    println!();
    println!("check — schedule determinism (byte-identical reports on re-run)");
    let a = run_grid(scale);
    let b = run_grid(scale);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            x.report.render(),
            y.report.render(),
            "{}/{}/{} report drifted across runs",
            x.scheduler,
            x.stack,
            x.load
        );
    }
    println!(
        "  {} grid points: byte-identical across independent replays",
        a.len()
    );
    println!("check — Hadoop-vs-MPI-D job-output identity on every point");
    for pair in a.chunks(2) {
        assert_eq!(
            pair[0].report.output_signature(),
            pair[1].report.output_signature(),
            "{}/{} stacks disagree on job outputs",
            pair[0].scheduler,
            pair[0].load
        );
    }
    let fa = run_fault_points(scale);
    let fb = run_fault_points(scale);
    for (x, y) in fa.iter().zip(&fb) {
        assert_eq!(x.report.render(), y.report.render(), "fault point drifted");
    }
    assert_eq!(
        fa[0].report.output_signature(),
        fa[1].report.output_signature(),
        "stacks disagree on outputs under faults"
    );
    println!("  outputs identical across stacks, with and without faults");
}

/// Parse `--shuffle baseline|innode|coded:<r>` (also accepts `coded_r<r>`,
/// the label form the reports print).
fn parse_shuffle(s: &str) -> SimShuffle {
    match s {
        "baseline" => SimShuffle::Baseline,
        "innode" => SimShuffle::InNodeCombine,
        other => {
            let r = other
                .strip_prefix("coded:")
                .or_else(|| other.strip_prefix("coded_r"))
                .and_then(|r| r.parse::<usize>().ok())
                .filter(|&r| r >= 1);
            match r {
                Some(r) => SimShuffle::Coded { r },
                None => panic!(
                    "unknown --shuffle value {other:?} \
                     (expected baseline | innode | coded:<r>)"
                ),
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().any(|a| a == "--check");
    let mut scale = if check { Scale::check() } else { Scale::full() };
    if let Some(i) = args.iter().position(|a| a == "--shuffle") {
        let v = args.get(i + 1).expect("--shuffle needs a value");
        scale.shuffle = parse_shuffle(v);
    }

    println!(
        "Serving under contention — {} jobs streamed onto {} hosts \
         ({} racks x {}, 4:1 oversubscribed core, {} tenants)",
        scale.n_jobs,
        scale.hosts(),
        scale.n_racks,
        scale.hosts_per_rack,
        TENANTS,
    );
    println!(
        "(seed {SEED:#x}; light load = {} mean gap, heavy = {}; \
         40% wordcount, 20% each sort/index/grep, 64MB-4GB zipf sizes; \
         shuffle strategy {})",
        fmt_secs(scale.light_gap.as_secs_f64()),
        fmt_secs(scale.heavy_gap.as_secs_f64()),
        scale.shuffle.label(),
    );
    println!();

    let points = run_grid(&scale);
    let faulted = run_fault_points(&scale);
    print_table(&points);
    println!();
    println!("fault-under-load (heavy stream; node crash + rack uplink partition that heals):");
    print_table(&faulted);
    assert_shape(&points, &faulted, scale.n_jobs);

    if check {
        run_check(&scale);
    }
}
