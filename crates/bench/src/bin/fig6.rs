//! Figure 6 — WordCount end-to-end: stock Hadoop vs. the MPI-D simulation
//! system, 1–100 GB across 7 worker nodes.
//!
//! Paper setup: Hadoop with 7/7 max concurrent mappers/reducers per node;
//! the MPI-D system with 49 mapper processes, 1 reducer process and the
//! rank-0 master. Paper result: MPI-D reduces execution time to 8 % / 48 % /
//! 56 % of Hadoop at 1 / 10 / 100 GB (49 s → 3.9 s, …, 2001 s → 1129 s).
//!
//! Run with `--quick` to skip the 100 GB point (CI-friendly),
//! `--trace <path>` to write a Chrome trace of the largest size's MPI-D run
//! (read/map/ship/merge pipeline spans per worker), or `--check` to also
//! run the real MPI-D WordCount pipeline under the mpiverify correctness
//! checker and prove it observation-only (checked and unchecked outputs
//! byte-identical, no findings).

use hadoop_sim::HadoopConfig;
use mapred::{run_mpid, run_sim_mpid, run_sim_mpid_traced, MpidEngineConfig, SimMpidConfig};
use mpid_bench::{fmt_secs, GB};
use std::sync::Arc;
use workloads::{wordcount_spec, TextGen, WordCount};

struct Row {
    gb: f64,
    hadoop_s: f64,
    mpid_s: f64,
    paper_hadoop_s: Option<f64>,
    paper_mpid_s: Option<f64>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let trace_path = mpid_bench::arg_value(&args, "--trace");
    // Paper anchor points: 1 GB (49 s, 3.9 s) and 100 GB (2001 s, 1129 s);
    // 10 GB is reported as a ratio ("48%").
    let sizes: &[(f64, Option<f64>, Option<f64>)] = if quick {
        &[(1.0, Some(49.0), Some(3.9)), (10.0, None, None)]
    } else {
        &[
            (1.0, Some(49.0), Some(3.9)),
            (3.0, None, None),
            (10.0, None, None),
            (30.0, None, None),
            (100.0, Some(2001.0), Some(1129.0)),
        ]
    };

    println!("Figure 6 — WordCount: Hadoop vs. simulation system with MPI-D");
    println!("(simulated ICPP-2011 testbed: 8 nodes, GbE, 7 workers)");
    println!();
    let header = format!(
        "{:>6}  {:>10}  {:>10}  {:>7}  {:>12}  {:>12}  {:>9}",
        "size", "Hadoop", "MPI-D", "ratio", "paper Hadoop", "paper MPI-D", "paper r."
    );
    println!("{header}");
    mpid_bench::rule(&header);

    let mut rows = Vec::new();
    let mut traced: Option<obs::Tracer> = None;
    for (idx, &(gb, paper_h, paper_m)) in sizes.iter().enumerate() {
        let input = (gb * GB as f64) as u64;
        let spec = wordcount_spec(input);

        // Hadoop: 7/7 slots, 7 reduce tasks (one wave).
        let hadoop = hadoop_sim::run_job(HadoopConfig::icpp2011(7, 7, 7), spec.clone());

        // MPI-D: 49 mappers + 1 reducer + master, splits sized like the
        // paper's pre-distributed data.
        let mpid_cfg = SimMpidConfig::icpp2011_fig6().with_auto_splits(input);
        let mpid = if trace_path.is_some() && idx == sizes.len() - 1 {
            let tracer = obs::Tracer::new();
            let report = run_sim_mpid_traced(mpid_cfg, spec, tracer.clone());
            traced = Some(tracer);
            report
        } else {
            run_sim_mpid(mpid_cfg, spec)
        };

        let row = Row {
            gb,
            hadoop_s: hadoop.makespan.as_secs_f64(),
            mpid_s: mpid.makespan.as_secs_f64(),
            paper_hadoop_s: paper_h,
            paper_mpid_s: paper_m,
        };
        println!(
            "{:>6}  {:>10}  {:>10}  {:>6.0}%  {:>12}  {:>12}  {:>9}",
            format!("{}GB", row.gb),
            fmt_secs(row.hadoop_s),
            fmt_secs(row.mpid_s),
            100.0 * row.mpid_s / row.hadoop_s,
            row.paper_hadoop_s.map_or("-".into(), fmt_secs),
            row.paper_mpid_s.map_or("-".into(), fmt_secs),
            match (row.paper_mpid_s, row.paper_hadoop_s) {
                (Some(m), Some(h)) => format!("{:.0}%", 100.0 * m / h),
                _ => "-".into(),
            },
        );
        rows.push(row);
    }

    if let (Some(tracer), Some(path)) = (&traced, &trace_path) {
        mpid_bench::emit_trace(
            tracer,
            path,
            obs::names::CAT_MPID_PHASE,
            "MPI-D run (largest size) — pipeline breakdown from trace",
        );
    }

    println!();
    // Shape checks (the reproduction claims).
    let all_faster = rows.iter().all(|r| r.mpid_s < r.hadoop_s);
    let first = &rows[0];
    let last = rows.last().unwrap();
    let ratio_grows = last.mpid_s / last.hadoop_s > first.mpid_s / first.hadoop_s;
    println!(
        "shape: MPI-D faster at every size: {all_faster}; \
         advantage narrows with size (ratio {:.0}% -> {:.0}%): {ratio_grows}",
        100.0 * first.mpid_s / first.hadoop_s,
        100.0 * last.mpid_s / last.hadoop_s,
    );
    assert!(all_faster, "shape violation: MPI-D must win everywhere");
    assert!(
        ratio_grows,
        "shape violation: Hadoop's fixed costs must amortize with size"
    );

    if check {
        run_checked_wordcount();
        run_strategy_wordcount();
    }
}

/// `--check`: run the real (threads-as-ranks) MPI-D WordCount pipeline with
/// the mpiverify checker on and off, and assert the checker is
/// observation-only — identical outputs, clean report.
fn run_checked_wordcount() {
    println!();
    println!("check — real MPI-D WordCount under mpiverify (4 mappers, 2 reducers, 4 MB)");
    let input = Arc::new(TextGen::new(11, 4 << 20, 8, 20_000));
    let run = |verify: bool| {
        let mut cfg = MpidEngineConfig::with_workers(4, 2);
        cfg.verify = verify;
        run_mpid(&cfg, Arc::new(WordCount), input.clone())
    };
    let checked = run(true);
    let unchecked = run(false);
    assert_eq!(
        checked.output, unchecked.output,
        "mpiverify must be observation-only"
    );
    println!(
        "  checked run:   {} output pairs, {} wire messages",
        checked.output.len(),
        checked.universe_msgs
    );
    println!(
        "  unchecked run: {} output pairs, {} wire messages",
        unchecked.output.len(),
        unchecked.universe_msgs
    );
    println!("  outputs byte-identical: true (checker is observation-only)");
}

/// `--check`: run the same real WordCount through a non-baseline shuffle
/// strategy (in-node combining, two mappers per host) and assert the
/// grouped output is bit-identical to the baseline ship — strategies may
/// change how bytes move, never what the reducers group.
fn run_strategy_wordcount() {
    println!();
    println!("check — real MPI-D WordCount under in-node combine (4 mappers, 2 per host)");
    let input = Arc::new(TextGen::new(11, 4 << 20, 8, 20_000));
    let run = |shuffle: mpid::ShuffleKind| {
        let mut cfg = MpidEngineConfig::with_workers(4, 2);
        cfg.shuffle = shuffle;
        run_mpid(&cfg, Arc::new(WordCount), input.clone())
    };
    let baseline = run(mpid::ShuffleKind::Baseline);
    let innode = run(mpid::ShuffleKind::InNodeCombine {
        mappers_per_host: 2,
    });
    assert_eq!(
        baseline.output, innode.output,
        "in-node combining must preserve grouped output"
    );
    println!(
        "  baseline: {} output pairs; in-node combine: {} output pairs",
        baseline.output.len(),
        innode.output.len()
    );
    println!("  outputs byte-identical: true (strategy changes bytes moved, not bytes meant)");
}
