//! One-shot reproduction driver: runs every table/figure binary (plus the
//! ablations) and collects their stdout into a single markdown report.
//!
//! ```sh
//! cargo run --release -p mpid-bench --bin repro              # full scale
//! cargo run --release -p mpid-bench --bin repro -- --quick   # CI scale
//! cargo run --release -p mpid-bench --bin repro -- --out report.md
//! ```
//!
//! Each experiment binary asserts its own shape claims, so a nonzero exit
//! here means a reproduction regression, not just a formatting problem.

use std::io::Write;
use std::path::PathBuf;
use std::process::Command;

struct Experiment {
    bin: &'static str,
    title: &'static str,
    takes_quick: bool,
}

const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        bin: "fig2",
        title: "Figure 2 — point-to-point latency (Hadoop RPC vs MPICH2)",
        takes_quick: false,
    },
    Experiment {
        bin: "fig3",
        title: "Figure 3 — bandwidth at varying packet sizes",
        takes_quick: false,
    },
    Experiment {
        bin: "fig1",
        title: "Figure 1 — JavaSort per-reducer shuffle breakdown",
        takes_quick: true,
    },
    Experiment {
        bin: "table1",
        title: "Table I — copy-stage share sweep",
        takes_quick: true,
    },
    Experiment {
        bin: "fig6",
        title: "Figure 6 — WordCount: Hadoop vs MPI-D",
        takes_quick: true,
    },
    Experiment {
        bin: "ablation",
        title: "Ablations — combiner, Isend, spills, pressure, compression, speculation",
        takes_quick: false,
    },
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path: PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("REPRO_REPORT.md"));

    // Sibling binaries live next to this one.
    let bin_dir = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("bin dir")
        .to_path_buf();

    let mut report = String::new();
    report.push_str("# Reproduction report — ICPP 2011 MPI-D suite\n\n");
    report.push_str(&format!(
        "Scale: {}. Every experiment binary asserts its paper-shape claims; \
         this report is their captured output.\n\n",
        if quick { "`--quick` (CI)" } else { "full (paper)" }
    ));

    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        let path = bin_dir.join(exp.bin);
        eprintln!("== running {} ...", exp.bin);
        let mut cmd = Command::new(&path);
        if quick && exp.takes_quick {
            cmd.arg("--quick");
        }
        let output = match cmd.output() {
            Ok(o) => o,
            Err(e) => {
                eprintln!(
                    "   could not launch {} ({e}); build all bins first: \
                     cargo build --release -p mpid-bench --bins",
                    path.display()
                );
                failures.push(exp.bin);
                continue;
            }
        };
        report.push_str(&format!("## {}\n\n```text\n", exp.title));
        report.push_str(&String::from_utf8_lossy(&output.stdout));
        if !output.status.success() {
            failures.push(exp.bin);
            report.push_str("\n*** SHAPE CHECK FAILED ***\n");
            report.push_str(&String::from_utf8_lossy(&output.stderr));
        }
        report.push_str("```\n\n");
    }

    let mut f = std::fs::File::create(&out_path).expect("create report file");
    f.write_all(report.as_bytes()).expect("write report");
    println!("report written to {}", out_path.display());
    if failures.is_empty() {
        println!("all {} experiments reproduced their shape claims", EXPERIMENTS.len());
    } else {
        println!("FAILED experiments: {failures:?}");
        std::process::exit(1);
    }
}
