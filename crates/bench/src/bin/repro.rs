//! One-shot reproduction driver: runs every table/figure binary (plus the
//! ablations) and collects their stdout into a single markdown report.
//!
//! ```sh
//! cargo run --release -p mpid-bench --bin repro              # full scale
//! cargo run --release -p mpid-bench --bin repro -- --quick   # CI scale
//! cargo run --release -p mpid-bench --bin repro -- --out report.md
//! cargo run --release -p mpid-bench --bin repro -- --trace traces/
//! cargo run --release -p mpid-bench --bin repro -- --check
//! ```
//!
//! With `--trace <dir>`, every experiment that supports tracing also writes
//! a Chrome trace (`<dir>/<bin>.json`, Perfetto-loadable). With `--check`,
//! experiments that support it also run their real MPI pipeline under the
//! mpiverify correctness checker and assert it is observation-only.
//!
//! Each experiment binary asserts its own shape claims, so a nonzero exit
//! here means a reproduction regression, not just a formatting problem.

use std::io::Write;
use std::path::PathBuf;
use std::process::Command;

struct Experiment {
    bin: &'static str,
    title: &'static str,
    takes_quick: bool,
    takes_trace: bool,
    takes_check: bool,
}

const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        bin: "fig2",
        title: "Figure 2 — point-to-point latency (Hadoop RPC vs MPICH2)",
        takes_quick: false,
        takes_trace: false,
        takes_check: false,
    },
    Experiment {
        bin: "fig3",
        title: "Figure 3 — bandwidth at varying packet sizes",
        takes_quick: false,
        takes_trace: false,
        takes_check: false,
    },
    Experiment {
        bin: "fig1",
        title: "Figure 1 — JavaSort per-reducer shuffle breakdown",
        takes_quick: true,
        takes_trace: true,
        takes_check: false,
    },
    Experiment {
        bin: "table1",
        title: "Table I — copy-stage share sweep",
        takes_quick: true,
        takes_trace: true,
        takes_check: false,
    },
    Experiment {
        bin: "fig6",
        title: "Figure 6 — WordCount: Hadoop vs MPI-D",
        takes_quick: true,
        takes_trace: true,
        takes_check: true,
    },
    Experiment {
        bin: "ablation",
        title: "Ablations — combiner, Isend, spills, pressure, compression, speculation",
        takes_quick: false,
        takes_trace: false,
        takes_check: false,
    },
];

/// Standing triage notes for the test suite, appended to every generated
/// report so readers of REPRO_REPORT.md see the suite's known state.
const TEST_TRIAGE: &str = "\
## Test-suite triage

`cargo test -q` at the original seed commit failed before running a single
test: five dev-dependencies (`bytes`, `rand`, `proptest`, `criterion`,
`parking_lot`) were declared as crates-io dependencies, which cannot be
fetched in the offline build environment. That was an environment problem,
not a code bug — the fix was vendoring minimal API-compatible stubs under
`vendor/` and pointing the workspace at them as path dependencies, after
which the whole suite compiles and runs with `--offline`.

There are **no intentionally-red tests**: every test in the workspace is
expected to pass, and the experiment binaries above assert their own
paper-shape claims (a nonzero exit from `repro` means a reproduction
regression). Trace-instrumented runs are covered by dedicated tests
asserting that tracing is a pure observation: traced and untraced runs
produce identical results, and trace export is byte-identical across
identical runs (`mpi-rt`, `mpid`, `hadoop-sim` trace tests).
";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let out_path: PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("REPRO_REPORT.md"));
    let trace_dir: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    if let Some(dir) = &trace_dir {
        std::fs::create_dir_all(dir).expect("create trace dir");
    }

    // Sibling binaries live next to this one.
    let bin_dir = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("bin dir")
        .to_path_buf();

    let mut report = String::new();
    report.push_str("# Reproduction report — ICPP 2011 MPI-D suite\n\n");
    report.push_str(&format!(
        "Scale: {}. Every experiment binary asserts its paper-shape claims; \
         this report is their captured output.\n\n",
        if quick {
            "`--quick` (CI)"
        } else {
            "full (paper)"
        }
    ));

    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        let path = bin_dir.join(exp.bin);
        eprintln!("== running {} ...", exp.bin);
        let mut cmd = Command::new(&path);
        if quick && exp.takes_quick {
            cmd.arg("--quick");
        }
        if let Some(dir) = &trace_dir {
            if exp.takes_trace {
                cmd.arg("--trace")
                    .arg(dir.join(format!("{}.json", exp.bin)));
            }
        }
        if check && exp.takes_check {
            cmd.arg("--check");
        }
        let output = match cmd.output() {
            Ok(o) => o,
            Err(e) => {
                eprintln!(
                    "   could not launch {} ({e}); build all bins first: \
                     cargo build --release -p mpid-bench --bins",
                    path.display()
                );
                failures.push(exp.bin);
                continue;
            }
        };
        report.push_str(&format!("## {}\n\n```text\n", exp.title));
        report.push_str(&String::from_utf8_lossy(&output.stdout));
        if !output.status.success() {
            failures.push(exp.bin);
            report.push_str("\n*** SHAPE CHECK FAILED ***\n");
            report.push_str(&String::from_utf8_lossy(&output.stderr));
        }
        report.push_str("```\n\n");
    }

    report.push_str(TEST_TRIAGE);

    let mut f = std::fs::File::create(&out_path).expect("create report file");
    f.write_all(report.as_bytes()).expect("write report");
    println!("report written to {}", out_path.display());
    if failures.is_empty() {
        println!(
            "all {} experiments reproduced their shape claims",
            EXPERIMENTS.len()
        );
    } else {
        println!("FAILED experiments: {failures:?}");
        std::process::exit(1);
    }
}
