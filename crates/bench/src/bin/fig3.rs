//! Figure 3 — bandwidth transferring a fixed 128 MB volume with packet
//! sizes from 1 B to 64 MB: Hadoop RPC vs HTTP-over-Jetty vs MPICH2.
//!
//! Paper observations reproduced:
//! * Hadoop RPC never exceeds ≈1.4 MB/s (per-call `ObjectWritable`
//!   serialization, strict ping-pong);
//! * Jetty and MPICH2 use the wire effectively from 256 B up
//!   (≈80 → 108 MB/s and ≈60 → 111 MB/s respectively);
//! * MPI's average peak is ≈2–3 % above Jetty's, and "much smoother" —
//!   shown here as the ±jitter band of repeated simulated runs.

use desim::rng::SplitMix64;
use mpid_bench::{fmt_bw, fmt_size, size_sweep, MB};
use netsim::calibrate::{JETTY_BW_JITTER, MPI_BW_JITTER};
use netsim::{HadoopRpcModel, JettyHttpModel, MpiModel, NioSocketModel, Transport};

fn main() {
    let total = 128 * MB;
    let mpi = MpiModel::default();
    let jetty = JettyHttpModel::default();
    let rpc = HadoopRpcModel::default();
    let nio = NioSocketModel::default();
    let mut rng = SplitMix64::new(0xF163);

    println!("Figure 3 — bandwidth, 128 MB transferred at varying packet sizes");
    println!("(simulated GbE testbed; +-% column = run-to-run peak variability)");
    println!();
    let header = format!(
        "{:>8}  {:>14}  {:>14}  {:>14}  {:>14}",
        "packet", "Hadoop RPC", "Jetty HTTP", "MPICH2", "Socket/NIO*"
    );
    println!("{header}");
    mpid_bench::rule(&header);

    let mut peaks = (0.0f64, 0.0f64, 0.0f64);
    for packet in size_sweep() {
        let r = rpc.effective_bandwidth(total, packet);
        // The measured curves wobble run to run; Jetty visibly more than
        // MPI ("the peak bandwidth of MPICH2 is much smoother than Jetty").
        let j = jetty.effective_bandwidth(total, packet) * rng.jittered(1.0, JETTY_BW_JITTER);
        let m = mpi.effective_bandwidth(total, packet) * rng.jittered(1.0, MPI_BW_JITTER);
        let s_nio = nio.effective_bandwidth(total, packet) * rng.jittered(1.0, 0.03);
        peaks = (peaks.0.max(r), peaks.1.max(j), peaks.2.max(m));
        println!(
            "{:>8}  {:>14}  {:>14}  {:>14}  {:>14}",
            fmt_size(packet),
            fmt_bw(r),
            fmt_bw(j),
            fmt_bw(m),
            fmt_bw(s_nio),
        );
    }

    println!();
    println!(
        "peaks: RPC {} (paper 1.4 MB/s) | Jetty {} (paper ~108 MB/s, +-{:.0}%) | MPI {} (paper ~111 MB/s, +-{:.0}%)",
        fmt_bw(peaks.0),
        fmt_bw(peaks.1),
        100.0 * JETTY_BW_JITTER,
        fmt_bw(peaks.2),
        100.0 * MPI_BW_JITTER,
    );

    // Shape checks from the paper's text.
    assert!(peaks.0 < 1.6e6, "RPC peak must stay ~1.4 MB/s");
    assert!(
        peaks.2 / peaks.0 > 50.0,
        "MPI must be ~two orders of magnitude over RPC"
    );
    let mpi_mean_peak = mpi.effective_bandwidth(total, 64 * MB);
    let jetty_mean_peak = jetty.effective_bandwidth(total, 64 * MB);
    let adv = mpi_mean_peak / jetty_mean_peak - 1.0;
    assert!(
        (0.015..=0.04).contains(&adv),
        "MPI peak must be 2-3% over Jetty, got {adv}"
    );
    // Effective from 256 B up.
    assert!(jetty.effective_bandwidth(total, 256) > 75.0e6);
    assert!(mpi.effective_bandwidth(total, 256) > 55.0e6);
    println!("all Figure 3 shape checks passed");
    println!();
    println!(
        "* Socket/NIO is the paper's FUTURE-WORK comparison (datanode block \
         streaming), projected from the real `transports::datanode` \
         implementation — not a paper-reported series."
    );
}
