//! Ablations of the MPI-D design choices called out in DESIGN.md — the
//! paper motivates each qualitatively (§III–IV); this binary quantifies
//! them on both the real pipeline and the simulated testbed.
//!
//! 1. **Local combining** ("reduce the memory consuming and the
//!    transmission quantity"): real shuffle bytes with/without combiner,
//!    and the simulated Figure 6 impact.
//! 2. **Isend overlap** (paper future work): simulated makespan with
//!    blocking vs overlapped spill sends.
//! 3. **Spill threshold / frame size**: real frame counts and bytes.
//! 4. **Memory-pressure term**: the simulated superlinearity with the term
//!    disabled (what a spilling, Hadoop-like MPI-D would look like).

use hadoop_sim::HadoopConfig;
use mapred::{run_mpid, run_sim_mpid, MpidEngineConfig, SimMpidConfig};
use mpid_bench::{fmt_secs, GB};
use std::sync::Arc;
use workloads::{wordcount_spec, TextGen, WordCount};

fn main() {
    println!("MPI-D design ablations");
    println!("======================");

    combiner_real();
    combiner_simulated();
    isend_overlap();
    spill_and_frame_sizes();
    pressure_term();
    compression();
    speculation();
}

/// Real pipeline: frame compression on/off.
fn compression() {
    println!();
    println!("5.  frame compression — real pipeline, 1 MB Zipf text");
    let run = |compress: bool| {
        let mut cfg = MpidEngineConfig::with_workers(2, 1);
        cfg.compress = compress;
        run_mpid(
            &cfg,
            Arc::new(WordCount),
            Arc::new(TextGen::new(11, 1 << 20, 4, 20_000)),
        )
    };
    let plain = run(false);
    let packed = run(true);
    assert_eq!(plain.output, packed.output);
    println!(
        "    plain:      {:>9} wire bytes",
        plain.sender_stats.bytes_sent
    );
    println!(
        "    compressed: {:>9} wire bytes ({:.1}x smaller, same output)",
        packed.sender_stats.bytes_sent,
        plain.sender_stats.bytes_sent as f64 / packed.sender_stats.bytes_sent as f64
    );
}

/// Simulated Hadoop: speculative execution on/off under heavy stragglers.
fn speculation() {
    println!();
    println!("6.  speculative execution — simulated Hadoop WordCount 2 GB, 15% stragglers x6");
    let mut on = HadoopConfig::icpp2011(7, 7, 7);
    on.straggler_prob = 0.15;
    on.straggler_factor = 6.0;
    let mut off = on.clone();
    off.speculative = false;
    let spec = wordcount_spec(2 << 30);
    let with = hadoop_sim::run_job(on, spec.clone());
    let without = hadoop_sim::run_job(off, spec);
    println!(
        "    speculation on:  makespan {} ({} duplicates, {} wasted)",
        fmt_secs(with.makespan.as_secs_f64()),
        with.speculative_launched,
        with.speculative_wasted
    );
    println!(
        "    speculation off: makespan {}",
        fmt_secs(without.makespan.as_secs_f64())
    );
    assert!(with.makespan <= without.makespan);
}

/// Real pipeline: combiner on/off over the same generated text.
fn combiner_real() {
    println!();
    println!("1a. local combining — real pipeline, 1 MB Zipf text, 2 mappers / 1 reducer");
    struct NoCombine;
    impl mapred::MapReduceApp for NoCombine {
        type InKey = u64;
        type InVal = String;
        type MidKey = String;
        type MidVal = u64;
        type OutKey = String;
        type OutVal = u64;
        fn map(&self, _k: u64, line: String, emit: &mut dyn FnMut(String, u64)) {
            for w in line.split_whitespace() {
                emit(w.to_string(), 1);
            }
        }
        fn reduce(&self, k: String, vs: Vec<u64>, emit: &mut dyn FnMut(String, u64)) {
            emit(k, vs.iter().sum());
        }
    }
    let cfg = MpidEngineConfig::with_workers(2, 1);
    let with = run_mpid(
        &cfg,
        Arc::new(WordCount),
        Arc::new(TextGen::new(1, 1 << 20, 4, 20_000)),
    );
    let without = run_mpid(
        &cfg,
        Arc::new(NoCombine),
        Arc::new(TextGen::new(1, 1 << 20, 4, 20_000)),
    );
    println!(
        "    with combiner:    {:>10} shuffle bytes, {:>6} frames",
        with.sender_stats.bytes_sent, with.sender_stats.frames
    );
    println!(
        "    without combiner: {:>10} shuffle bytes, {:>6} frames",
        without.sender_stats.bytes_sent, without.sender_stats.frames
    );
    println!(
        "    -> combiner cuts shuffle volume {:.1}x",
        without.sender_stats.bytes_sent as f64 / with.sender_stats.bytes_sent as f64
    );
    assert!(without.sender_stats.bytes_sent > 3 * with.sender_stats.bytes_sent);
}

/// Simulated testbed: what Figure 6 would look like without the combiner.
fn combiner_simulated() {
    println!();
    println!("1b. local combining — simulated Figure 6 point, WordCount 10 GB");
    let input = 10 * GB;
    let spec = wordcount_spec(input);
    let mut no_combine = spec.clone();
    no_combine.combine_ratio = 1.0;
    let cfg = SimMpidConfig::icpp2011_fig6().with_auto_splits(input);
    let with = run_sim_mpid(cfg.clone(), spec);
    let without = run_sim_mpid(cfg, no_combine);
    println!(
        "    with combiner:    makespan {}, shuffle {:.1} MB",
        fmt_secs(with.makespan.as_secs_f64()),
        with.shuffle_bytes as f64 / 1e6
    );
    println!(
        "    without combiner: makespan {}, shuffle {:.1} MB (all to ONE reducer)",
        fmt_secs(without.makespan.as_secs_f64()),
        without.shuffle_bytes as f64 / 1e6
    );
    assert!(without.makespan > with.makespan);
    assert!(without.shuffle_bytes > 10 * with.shuffle_bytes);
}

/// Simulated testbed: Isend overlap of spill sends (paper future work).
fn isend_overlap() {
    println!();
    println!("2.  Isend overlap — simulated WordCount without a combiner (send-heavy)");
    let input = 10 * GB;
    let mut spec = wordcount_spec(input);
    spec.combine_ratio = 0.5; // keep sends substantial so overlap matters
    let base_cfg = SimMpidConfig::icpp2011_fig6().with_auto_splits(input);
    let blocking = run_sim_mpid(base_cfg.clone(), spec.clone());
    let mut overlap_cfg = base_cfg;
    overlap_cfg.overlap_sends = true;
    let overlapped = run_sim_mpid(overlap_cfg, spec);
    println!(
        "    blocking sends:   {}",
        fmt_secs(blocking.makespan.as_secs_f64())
    );
    println!(
        "    Isend overlap:    {}  ({:+.1}%)",
        fmt_secs(overlapped.makespan.as_secs_f64()),
        100.0 * (overlapped.makespan.as_secs_f64() / blocking.makespan.as_secs_f64() - 1.0)
    );
    assert!(overlapped.makespan.as_secs_f64() <= blocking.makespan.as_secs_f64() * 1.001);
}

/// Real pipeline: spill-threshold / frame-size sweep.
fn spill_and_frame_sizes() {
    println!();
    println!("3.  spill threshold x frame size — real pipeline, fixed input");
    println!(
        "    {:>10} {:>10} | {:>8} {:>8} {:>12}",
        "spill", "frame", "spills", "frames", "bytes"
    );
    for (spill, frame) in [
        (1usize << 10, 1usize << 10),
        (64 << 10, 8 << 10),
        (4 << 20, 512 << 10),
    ] {
        let cfg = MpidEngineConfig {
            n_mappers: 2,
            n_reducers: 2,
            spill_threshold_bytes: spill,
            frame_bytes: frame,
            ..Default::default()
        };
        let job = run_mpid(
            &cfg,
            Arc::new(WordCount),
            Arc::new(TextGen::new(2, 512 << 10, 4, 10_000)),
        );
        println!(
            "    {:>10} {:>10} | {:>8} {:>8} {:>12}",
            spill,
            frame,
            job.sender_stats.spills,
            job.sender_stats.frames,
            job.sender_stats.bytes_sent
        );
    }
    println!("    -> small spill buffers ship more, less-combined data (same final output)");
}

/// Simulated testbed: disable the memory-pressure term.
fn pressure_term() {
    println!();
    println!("4.  memory-pressure term — simulated MPI-D WordCount, 1 vs 100 GB");
    for pressure in [0.25, 0.0] {
        let run = |gb: u64| {
            let mut cfg = SimMpidConfig::icpp2011_fig6().with_auto_splits(gb * GB);
            cfg.pressure_per_doubling = pressure;
            run_sim_mpid(cfg, wordcount_spec(gb * GB))
                .makespan
                .as_secs_f64()
        };
        let t1 = run(1);
        let t100 = run(100);
        println!(
            "    pressure {:>4}: 1GB {} -> 100GB {}  ({:.0}x for 100x data)",
            pressure,
            fmt_secs(t1),
            fmt_secs(t100),
            t100 / t1
        );
    }
    println!("    -> the term reproduces the paper's superlinear Figure 6 growth (289x)");
}
