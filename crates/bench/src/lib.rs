//! # mpid-bench — experiment drivers for the ICPP 2011 reproduction
//!
//! One binary per paper table/figure (see `src/bin/`): each regenerates the
//! corresponding result on the simulated testbed and prints the paper's
//! reported values alongside for comparison. Criterion benches (see
//! `benches/`) measure the *real* implementations (loopback RPC/HTTP vs the
//! `mpi-rt` runtime, MPI-D pipeline ablations).

#![warn(missing_docs)]

/// Gigabyte constant.
pub const GB: u64 = 1 << 30;
/// Megabyte constant.
pub const MB: u64 = 1 << 20;

/// Paper-friendly size formatting (powers of two, as in Figures 2–3).
pub fn fmt_size(bytes: u64) -> String {
    if bytes >= GB {
        format!("{}GB", bytes / GB)
    } else if bytes >= MB {
        format!("{}MB", bytes / MB)
    } else if bytes >= 1024 {
        format!("{}KB", bytes / 1024)
    } else {
        format!("{}B", bytes)
    }
}

/// Format seconds with adaptive precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0} s")
    } else if s >= 1.0 {
        format!("{s:.1} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

/// Format a bandwidth in MB/s.
pub fn fmt_bw(bytes_per_sec: f64) -> String {
    let mb = bytes_per_sec / 1e6;
    if mb >= 1.0 {
        format!("{mb:.1} MB/s")
    } else {
        format!("{:.1} KB/s", bytes_per_sec / 1e3)
    }
}

/// Print a horizontal rule sized to a header line.
pub fn rule(header: &str) {
    println!("{}", "-".repeat(header.len()));
}

/// Value of a `--flag value` pair in `args`, if present.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Write a tracer's events as Chrome trace JSON (Perfetto/`chrome://tracing`
/// loadable) and print the per-phase breakdown reconstructed from the trace
/// alone, plus the metrics registry.
pub fn emit_trace(tracer: &obs::Tracer, path: &str, phase_cat: &str, title: &str) {
    let trace = tracer.take_trace();
    obs::chrome::write_chrome_trace(&trace, std::path::Path::new(path))
        .expect("write chrome trace");
    println!();
    println!(
        "trace: {} events -> {path} (load in Perfetto / chrome://tracing)",
        trace.events().len()
    );
    let breakdown = obs::report::PhaseBreakdown::from_trace(&trace, phase_cat);
    println!();
    print!("{}", breakdown.render(title));
    let metrics = tracer.metrics().render();
    if !metrics.is_empty() {
        println!();
        print!("{metrics}");
    }
    let profile = obs::analysis::RunProfile::build(&trace, Some(&tracer.metrics()), title);
    print_profile_summary(&profile);
}

/// Print the run-profile lines every figure summary shares: the map↔shuffle
/// overlap ratio and the top critical-path segments (see `obs::analysis`).
pub fn print_profile_summary(p: &obs::analysis::RunProfile) {
    println!();
    println!(
        "profile: map/shuffle overlap ratio {:.2} (map {}, shuffle {}, overlap {})",
        p.overlap.ratio,
        fmt_secs(p.overlap.map_ns as f64 / 1e9),
        fmt_secs(p.overlap.shuffle_ns as f64 / 1e9),
        fmt_secs(p.overlap.overlap_ns as f64 / 1e9),
    );
    println!(
        "critical path: {} ({:.0}% of wall), top segments:",
        fmt_secs(p.critical_path.total_ns as f64 / 1e9),
        p.critical_path.coverage * 100.0
    );
    for s in p.top_segments(3) {
        println!(
            "  {:<28} {:>10}  ({:.0}%)",
            s.key,
            fmt_secs(s.ns as f64 / 1e9),
            s.share * 100.0
        );
    }
}

/// Write a [`obs::analysis::RunProfile`] as deterministic JSON under `dir`
/// (created if missing) and return the file path.
pub fn write_profile(p: &obs::analysis::RunProfile, dir: &str) -> String {
    std::fs::create_dir_all(dir).expect("create profile dir");
    let path = format!("{dir}/{}.profile.json", p.label);
    std::fs::write(&path, p.to_json()).expect("write profile json");
    path
}

/// The message-size sweep used by Figures 2 and 3 (1 B → 64 MB, powers of
/// two... the paper plots powers of 4; we use powers of 2 for smoother
/// curves).
pub fn size_sweep() -> Vec<u64> {
    let mut v = Vec::new();
    let mut s = 1u64;
    while s <= 64 * MB {
        v.push(s);
        s *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_formatting() {
        assert_eq!(fmt_size(1), "1B");
        assert_eq!(fmt_size(2048), "2KB");
        assert_eq!(fmt_size(64 * MB), "64MB");
        assert_eq!(fmt_size(3 * GB), "3GB");
    }

    #[test]
    fn sweep_covers_figure_range() {
        let s = size_sweep();
        assert_eq!(*s.first().unwrap(), 1);
        assert_eq!(*s.last().unwrap(), 64 * MB);
        assert!(s.windows(2).all(|w| w[1] == w[0] * 2));
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_secs(0.0005), "500.0 us");
        assert_eq!(fmt_secs(0.5), "500.00 ms");
        assert_eq!(fmt_secs(12.34), "12.3 s");
        assert_eq!(fmt_secs(2001.0), "2001 s");
    }
}
