//! mpi-rt collective-operation benchmarks: scaling of the tree/ring/pairwise
//! algorithms with rank count and payload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpi_rt::Universe;
use std::time::{Duration, Instant};

const RANKS: &[usize] = &[2, 4, 8];
const ELEMS: usize = 1024; // u64 elements per rank

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives");
    g.sample_size(10).measurement_time(Duration::from_secs(3));

    for &n in RANKS {
        g.bench_with_input(BenchmarkId::new("barrier", n), &n, |b, _| {
            b.iter_custom(|iters| {
                let out = Universe::run(n, move |comm| {
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        comm.barrier().unwrap();
                    }
                    t0.elapsed()
                });
                out[0]
            })
        });

        g.bench_with_input(BenchmarkId::new("bcast_8KiB", n), &n, |b, _| {
            b.iter_custom(|iters| {
                let out = Universe::run(n, move |comm| {
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        let mut buf = if comm.rank() == 0 {
                            vec![1u64; ELEMS]
                        } else {
                            Vec::new()
                        };
                        comm.bcast(0, &mut buf).unwrap();
                        assert_eq!(buf.len(), ELEMS);
                    }
                    t0.elapsed()
                });
                out[0]
            })
        });

        g.bench_with_input(BenchmarkId::new("allreduce_8KiB", n), &n, |b, _| {
            b.iter_custom(|iters| {
                let out = Universe::run(n, move |comm| {
                    let local = vec![comm.rank() as u64; ELEMS];
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        let sum = comm.allreduce(&local, |a, b| a + b).unwrap();
                        assert_eq!(sum.len(), ELEMS);
                    }
                    t0.elapsed()
                });
                out[0]
            })
        });

        g.bench_with_input(BenchmarkId::new("alltoall_1KiB", n), &n, |b, _| {
            b.iter_custom(|iters| {
                let out = Universe::run(n, move |comm| {
                    let send: Vec<Vec<u64>> = (0..n).map(|j| vec![j as u64; 128]).collect();
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        let recv = comm.alltoall(send.clone()).unwrap();
                        assert_eq!(recv.len(), n);
                    }
                    t0.elapsed()
                });
                out[0]
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
