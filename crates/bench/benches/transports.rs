//! Real-transport microbenchmarks — the paper's Figure 2/3 experiment with
//! real bytes on loopback TCP / in-process channels.
//!
//! Groups:
//! * `pingpong/<transport>/<size>` — one round trip (Figure 2's primitive);
//! * `bulk/<transport>/<size>` — transfer 8 MB in `<size>` packets
//!   (Figure 3's primitive, volume scaled down for bench time).
//!
//! Expected shape (absolute numbers are modern-loopback): `hrpc` degrades
//! dramatically with payload size — per-call `ObjectWritable` serialization
//! plus strict ping-pong — while `http` and `mpi` stream.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpi_rt::Universe;
use std::sync::Arc;
use std::time::{Duration, Instant};
use transports::datanode::{read_block, BlockStore, DataNode};
use transports::{hrpc, ContentStore, HttpClient, HttpServer, ObjectWritable, RpcClient};

const PINGPONG_SIZES: &[usize] = &[1, 1024, 64 * 1024, 1 << 20];
const BULK_TOTAL: usize = 8 << 20;
const BULK_PACKETS: &[usize] = &[4 << 10, 256 << 10, 8 << 20];

fn bench_pingpong(c: &mut Criterion) {
    let mut g = c.benchmark_group("pingpong");
    g.sample_size(20).measurement_time(Duration::from_secs(3));

    for &size in PINGPONG_SIZES {
        g.throughput(Throughput::Bytes(size as u64));

        // Hadoop-RPC-style echo call.
        let (_server, addr) = hrpc::start_echo_server().unwrap();
        let client = RpcClient::connect(addr, "echo", 1).unwrap();
        let payload = vec![7u8; size];
        g.bench_with_input(BenchmarkId::new("hrpc", size), &size, |b, _| {
            b.iter(|| {
                let reply = client
                    .call("recv", &[ObjectWritable::Bytes(payload.clone())])
                    .unwrap();
                assert!(matches!(reply, ObjectWritable::Bytes(v) if v.len() == size));
            })
        });

        // HTTP GET of a stored buffer.
        let store = Arc::new(ContentStore::new());
        store.put("x", Bytes::from(vec![7u8; size]));
        let server = HttpServer::start("127.0.0.1:0", store, 256 << 10).unwrap();
        let mut http = HttpClient::connect(server.addr()).unwrap();
        g.bench_with_input(BenchmarkId::new("http", size), &size, |b, _| {
            b.iter(|| assert_eq!(http.get("x").unwrap().len(), size))
        });

        // mpi-rt ping-pong; the universe spawn is amortized with iter_custom.
        g.bench_with_input(BenchmarkId::new("mpi", size), &size, |b, _| {
            b.iter_custom(|iters| {
                let out = Universe::run(2, move |comm| {
                    if comm.rank() == 0 {
                        let payload = vec![7u8; size];
                        let t0 = Instant::now();
                        for _ in 0..iters {
                            comm.send(1, 0, &payload).unwrap();
                            let (back, _) = comm.recv::<u8>(Some(1), Some(1)).unwrap();
                            assert_eq!(back.len(), size);
                        }
                        t0.elapsed()
                    } else {
                        for _ in 0..iters {
                            let (d, _) = comm.recv::<u8>(Some(0), Some(0)).unwrap();
                            comm.send(0, 1, &d).unwrap();
                        }
                        Duration::ZERO
                    }
                });
                out[0]
            })
        });
    }
    g.finish();
}

fn bench_bulk(c: &mut Criterion) {
    let mut g = c.benchmark_group("bulk");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    g.throughput(Throughput::Bytes(BULK_TOTAL as u64));

    for &packet in BULK_PACKETS {
        let n_packets = BULK_TOTAL / packet;

        // RPC: one call per packet (no pipelining — the Figure 3 mechanism).
        let (_server, addr) = hrpc::start_echo_server().unwrap();
        let client = RpcClient::connect(addr, "echo", 1).unwrap();
        let payload = vec![3u8; packet];
        g.bench_with_input(BenchmarkId::new("hrpc", packet), &packet, |b, _| {
            b.iter(|| {
                for _ in 0..n_packets {
                    client
                        .call("size", &[ObjectWritable::Bytes(payload.clone())])
                        .unwrap();
                }
            })
        });

        // HTTP: server streams the full volume in `packet`-sized writes.
        let store = Arc::new(ContentStore::new());
        store.put("bulk", Bytes::from(vec![3u8; BULK_TOTAL]));
        let server = HttpServer::start("127.0.0.1:0", store, packet).unwrap();
        let mut http = HttpClient::connect(server.addr()).unwrap();
        g.bench_with_input(BenchmarkId::new("http", packet), &packet, |b, _| {
            b.iter(|| assert_eq!(http.get("bulk").unwrap().len(), BULK_TOTAL))
        });

        // MPI: one message per packet, receiver drains.
        g.bench_with_input(BenchmarkId::new("mpi", packet), &packet, |b, _| {
            b.iter_custom(|iters| {
                let out = Universe::run(2, move |comm| {
                    if comm.rank() == 0 {
                        let payload = vec![3u8; packet];
                        let t0 = Instant::now();
                        for _ in 0..iters {
                            for _ in 0..n_packets {
                                comm.send(1, 0, &payload).unwrap();
                            }
                            // Completion ack bounds the measurement.
                            let _ = comm.recv::<u8>(Some(1), Some(9)).unwrap();
                        }
                        t0.elapsed()
                    } else {
                        for _ in 0..iters {
                            for _ in 0..n_packets {
                                let _ = comm.recv::<u8>(Some(0), Some(0)).unwrap();
                            }
                            comm.send(0, 9, &[1u8]).unwrap();
                        }
                        Duration::ZERO
                    }
                });
                out[0]
            })
        });
    }
    g.finish();
}

/// Datanode block streaming (the "Socket over NIO" path of the paper's
/// future work): end-to-end block reads with per-packet CRC verification.
fn bench_nio_stream(c: &mut Criterion) {
    let mut g = c.benchmark_group("nio_stream");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for &size in &[64usize << 10, 1 << 20, 8 << 20] {
        g.throughput(Throughput::Bytes(size as u64));
        let store = Arc::new(BlockStore::new());
        store.put(1, Bytes::from(vec![0x3Cu8; size]));
        let node = DataNode::start("127.0.0.1:0", store).unwrap();
        let addr = node.addr();
        g.bench_with_input(BenchmarkId::new("read_block", size), &size, |b, _| {
            b.iter(|| {
                let data = read_block(addr, 1).unwrap();
                assert_eq!(data.len(), size);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pingpong, bench_bulk, bench_nio_stream);
criterion_main!(benches);
