//! MPI-D pipeline benchmarks: component throughput (codec, realignment,
//! partitioning) and whole-job ablations (combiner, Isend, spill sizes) on
//! the real engine.

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mapred::{run_mpid, MpidEngineConfig};
use mpid::realign::{FrameBuilder, FrameReader};
use mpid::{HashPartitioner, Kv, Partitioner};
use std::sync::Arc;
use std::time::Duration;
use workloads::{TextGen, WordCount};

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    let pairs: Vec<(String, u64)> = (0..1000)
        .map(|i| (format!("key-{:06}", i % 97), i as u64))
        .collect();
    let total: usize = pairs
        .iter()
        .map(|(k, v)| k.wire_size() + v.wire_size())
        .sum();
    g.throughput(Throughput::Bytes(total as u64));

    g.bench_function("encode_1k_pairs", |b| {
        b.iter(|| {
            let mut buf = BytesMut::with_capacity(total);
            for (k, v) in &pairs {
                k.encode(&mut buf);
                v.encode(&mut buf);
            }
            buf
        })
    });

    let mut encoded = BytesMut::new();
    for (k, v) in &pairs {
        k.encode(&mut encoded);
        v.encode(&mut encoded);
    }
    g.bench_function("decode_1k_pairs", |b| {
        b.iter(|| {
            let mut slice = &encoded[..];
            let mut n = 0;
            while !slice.is_empty() {
                let _k = String::decode(&mut slice).unwrap();
                let _v = u64::decode(&mut slice).unwrap();
                n += 1;
            }
            assert_eq!(n, pairs.len());
        })
    });
    g.finish();
}

fn bench_realign(c: &mut Criterion) {
    let mut g = c.benchmark_group("realign");
    let groups: Vec<(String, Vec<u64>)> = (0..500)
        .map(|i| (format!("group-{i:04}"), vec![i as u64; 8]))
        .collect();

    for frame_bytes in [4usize << 10, 64 << 10, 1 << 20] {
        g.bench_with_input(
            BenchmarkId::new("build", frame_bytes),
            &frame_bytes,
            |b, &fb| {
                b.iter(|| {
                    let mut builder = FrameBuilder::new(fb);
                    for (k, vs) in &groups {
                        builder.push_group(k, vs);
                    }
                    builder.finish()
                })
            },
        );
    }

    let mut builder = FrameBuilder::new(64 << 10);
    for (k, vs) in &groups {
        builder.push_group(k, vs);
    }
    let frames = builder.finish();
    g.bench_function("read_back", |b| {
        b.iter(|| {
            let mut n = 0;
            for f in &frames {
                let mut r = FrameReader::new(f).unwrap();
                while let Some((_k, _vs)) = r.next_group::<String, u64>().unwrap() {
                    n += 1;
                }
            }
            assert_eq!(n, groups.len());
        })
    });
    g.finish();
}

fn bench_partitioner(c: &mut Criterion) {
    let keys: Vec<String> = (0..4096).map(|i| format!("word-{i}")).collect();
    c.bench_function("partition_4k_keys", |b| {
        let p = HashPartitioner;
        b.iter(|| {
            let mut acc = 0usize;
            for k in &keys {
                acc = acc.wrapping_add(p.partition(k, 49));
            }
            acc
        })
    });
}

fn bench_whole_job(c: &mut Criterion) {
    let mut g = c.benchmark_group("wordcount_job_512KiB");
    g.sample_size(10).measurement_time(Duration::from_secs(8));

    let variants: &[(&str, MpidEngineConfig)] = &[
        ("combiner+send", MpidEngineConfig::with_workers(2, 1)),
        ("combiner+isend", {
            let mut c = MpidEngineConfig::with_workers(2, 1);
            c.use_isend = true;
            c
        }),
        ("tiny_spill", {
            let mut c = MpidEngineConfig::with_workers(2, 1);
            c.spill_threshold_bytes = 4 << 10;
            c.frame_bytes = 2 << 10;
            c
        }),
    ];
    for (name, cfg) in variants {
        g.bench_function(name, |b| {
            b.iter(|| {
                let job = run_mpid(
                    cfg,
                    Arc::new(WordCount),
                    Arc::new(TextGen::new(7, 512 << 10, 4, 10_000)),
                );
                assert!(!job.output.is_empty());
                job.output.len()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_realign,
    bench_partitioner,
    bench_whole_job
);
criterion_main!(benches);
