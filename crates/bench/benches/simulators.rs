//! Simulator throughput benchmarks: how fast the discrete-event machinery
//! replays cluster-scale jobs (events, fluid recomputation, scheduling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hadoop_sim::HadoopConfig;
use mapred::{run_sim_mpid, SimMpidConfig};
use std::time::Duration;
use workloads::{javasort_spec, wordcount_spec};

const GB: u64 = 1 << 30;

fn bench_hadoop_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("hadoop_sim");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    for gb in [1u64, 4] {
        let spec = javasort_spec(gb * GB);
        let n_red = (gb * 16) as usize;
        g.bench_with_input(BenchmarkId::new("javasort", gb), &gb, |b, _| {
            b.iter(|| {
                let report = hadoop_sim::run_job(HadoopConfig::icpp2011(8, 8, n_red), spec.clone());
                assert!(report.makespan.as_secs_f64() > 0.0);
                report.maps.len()
            })
        });
    }
    g.finish();
}

fn bench_mpid_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpid_sim");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    for gb in [1u64, 10] {
        let spec = wordcount_spec(gb * GB);
        g.bench_with_input(BenchmarkId::new("wordcount", gb), &gb, |b, _| {
            b.iter(|| {
                let report = run_sim_mpid(
                    SimMpidConfig::icpp2011_fig6().with_auto_splits(gb * GB),
                    spec.clone(),
                );
                report.makespan
            })
        });
    }
    g.finish();
}

fn bench_fluid_engine(c: &mut Criterion) {
    use netsim::FluidEngine;
    c.bench_function("fluid_100flows_recompute", |b| {
        b.iter(|| {
            let mut e = FluidEngine::new();
            let res: Vec<_> = (0..16).map(|_| e.add_resource(117e6)).collect();
            for i in 0..100u64 {
                let a = res[(i % 16) as usize];
                let b2 = res[((i * 7 + 3) % 16) as usize];
                e.start_flow(1 << 20, &[a, b2], 1.0);
            }
            let mut done = 0;
            while e.active_flows() > 0 {
                if let Some(dt) = e.next_completion() {
                    done += e.advance(dt + 1e-9).len();
                } else {
                    break;
                }
            }
            assert_eq!(done, 100);
        })
    });
}

criterion_group!(
    benches,
    bench_hadoop_sim,
    bench_mpid_sim,
    bench_fluid_engine
);
criterion_main!(benches);
