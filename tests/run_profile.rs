//! Golden tests for the `obs::analysis` run-profile layer over the two
//! Figure-6 simulators. Sim traces carry simulated-time timestamps, so a
//! fixed config + spec must produce a **bit-identical** profile — critical
//! path, attribution table, overlap ratio, JSON bytes — on every run and
//! every machine. These tests are the contract behind the committed
//! `PROFILE_BASELINE.json` and `cargo xtask trace-diff`.

use mpid_suite::hadoop_sim::{self, HadoopConfig};
use mpid_suite::mapred::{run_sim_mpid_traced, SimMpidConfig};
use mpid_suite::obs::analysis::RunProfile;
use mpid_suite::obs::Tracer;
use mpid_suite::workloads::wordcount_spec;

const GB: u64 = 1 << 30;

fn mpid_profile() -> RunProfile {
    let tracer = Tracer::new();
    let _ = run_sim_mpid_traced(
        SimMpidConfig::icpp2011_fig6().with_auto_splits(GB),
        wordcount_spec(GB),
        tracer.clone(),
    );
    let trace = tracer.take_trace();
    let metrics = tracer.metrics();
    RunProfile::build(&trace, Some(&metrics), "fig6_mpid_1gb")
}

fn hadoop_profile() -> RunProfile {
    let tracer = Tracer::new();
    let _ = hadoop_sim::run_job_traced(
        HadoopConfig::icpp2011(7, 7, 7),
        wordcount_spec(GB),
        tracer.clone(),
    );
    let trace = tracer.take_trace();
    let metrics = tracer.metrics();
    RunProfile::build(&trace, Some(&metrics), "fig6_hadoop_1gb")
}

#[test]
fn profile_is_bit_identical_across_runs() {
    let a = mpid_profile().to_json();
    let b = mpid_profile().to_json();
    assert_eq!(a, b, "same seed must give byte-identical profile JSON");
    let ha = hadoop_profile().to_json();
    let hb = hadoop_profile().to_json();
    assert_eq!(ha, hb);
}

#[test]
fn mpid_overlap_beats_hadoop() {
    // The paper's mechanism: MPI-D mappers ship their spills while still
    // mapping (producer-side pipelining); Hadoop moves a map output only
    // after the producing task committed it, so its shuffle never overlaps
    // map compute on the producing lane.
    let m = mpid_profile();
    let h = hadoop_profile();
    assert!(
        m.overlap.ratio > h.overlap.ratio,
        "MPI-D overlap {} must exceed Hadoop overlap {}",
        m.overlap.ratio,
        h.overlap.ratio
    );
    assert!(m.overlap.ratio > 0.5, "MPI-D pipelines most of its shuffle");
    assert!(
        h.overlap.shuffle_ns > 0,
        "Hadoop profile must see copy spans"
    );
}

#[test]
fn profile_structure_names_the_pipeline() {
    let m = mpid_profile();
    // Critical path must explain most of the wall clock and end in the
    // reducer tail.
    assert!(m.critical_path.coverage > 0.9);
    assert_eq!(
        m.critical_path.segments.last().map(|s| s.name.as_str()),
        Some("reduce_tail")
    );
    // Every simulated phase appears in the attribution table, and read
    // self-time is disk-dominated while ship self-time is network/blocked.
    let names: Vec<&str> = m.attribution.iter().map(|r| r.name.as_str()).collect();
    for phase in ["read", "map", "ship", "reduce_tail"] {
        assert!(names.contains(&phase), "missing {phase} in {names:?}");
    }
    let read = m.attribution.iter().find(|r| r.name == "read").unwrap();
    assert!(read.disk_ns > read.compute_ns);
    // Utilization timelines sampled from the fluid engine are present.
    assert!(m.utilization.iter().any(|c| c.name == "net.util.disk"));

    let h = hadoop_profile();
    let copy = h.attribution.iter().find(|r| r.name == "copy").unwrap();
    assert!(
        copy.blocked_ns > copy.compute_ns,
        "hadoop copy waits on peers"
    );
}
