//! Cross-crate integration: every workload produces identical output on the
//! sequential reference engine and on the real distributed MPI-D engine,
//! across topologies and pipeline configurations.

use mpid_suite::mapred::{run_local, run_mpid, MpidEngineConfig, TextInput, VecInput};
use mpid_suite::workloads::{Grep, InvertedIndex, JavaSort, SortGen, TextGen, WordCount};
use std::sync::Arc;

fn sorted<K: Ord + Clone, V: Ord + Clone>(mut v: Vec<(K, V)>) -> Vec<(K, V)> {
    v.sort();
    v
}

#[test]
fn wordcount_on_generated_text_all_topologies() {
    let make_input = || TextGen::new(0xABCD, 96 * 1024, 6, 500);
    let reference = sorted(run_local(&WordCount, &make_input()));
    assert!(!reference.is_empty());
    for (m, r) in [(1, 1), (2, 2), (4, 3)] {
        let cfg = MpidEngineConfig::with_workers(m, r);
        let job = run_mpid(&cfg, Arc::new(WordCount), Arc::new(make_input()));
        assert_eq!(sorted(job.output), reference, "topology {m}x{r}");
    }
}

#[test]
fn wordcount_total_words_conserved() {
    let input = TextGen::new(0x1234, 64 * 1024, 4, 300);
    let total_words: u64 = (0..4)
        .flat_map(|s| {
            input
                .records(s)
                .map(|(_, l)| l.split_whitespace().count() as u64)
                .collect::<Vec<_>>()
        })
        .sum();
    use mpid_suite::mapred::InputFormat;
    let job = run_mpid(
        &MpidEngineConfig::with_workers(3, 2),
        Arc::new(WordCount),
        Arc::new(TextGen::new(0x1234, 64 * 1024, 4, 300)),
    );
    let counted: u64 = job.output.iter().map(|(_, c)| c).sum();
    assert_eq!(counted, total_words);
    // Combiner must have collapsed most pairs.
    assert!(job.sender_stats.pairs_combined > job.sender_stats.pairs_in / 2);
}

#[test]
fn javasort_engines_agree_and_sort() {
    let make_input = || SortGen::new(0x5EED, 400_000, 5);
    let reference = run_local(&JavaSort, &make_input());
    let job = run_mpid(
        &MpidEngineConfig::with_workers(3, 4),
        Arc::new(JavaSort),
        Arc::new(make_input()),
    );
    // Range partitioning means the merged (reducer-ordered) output is the
    // globally sorted sequence, same as the local engine's.
    assert_eq!(job.output, reference);
    let keys: Vec<u64> = job.output.iter().map(|(k, _)| *k).collect();
    assert!(keys.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn grep_engines_agree() {
    let make_input = || TextGen::new(0xFEED, 32 * 1024, 3, 200);
    let grep = || Grep {
        pattern: "ba".into(),
    };
    let reference = sorted(run_local(&grep(), &make_input()));
    let job = run_mpid(
        &MpidEngineConfig::with_workers(2, 2),
        Arc::new(grep()),
        Arc::new(make_input()),
    );
    assert_eq!(sorted(job.output), reference);
}

#[test]
fn inverted_index_engines_agree() {
    let docs: Vec<(u64, String)> = (0..20)
        .map(|i| (i, format!("w{} w{} shared", i % 5, (i * 3) % 7)))
        .collect();
    let reference = sorted(run_local(
        &InvertedIndex,
        &VecInput::round_robin(docs.clone(), 4),
    ));
    let job = run_mpid(
        &MpidEngineConfig::with_workers(4, 2),
        Arc::new(InvertedIndex),
        Arc::new(VecInput::round_robin(docs, 4)),
    );
    assert_eq!(sorted(job.output), reference);
    // Every word's posting list contains doc ids only once.
    for (_, list) in &reference {
        let ids: Vec<&str> = list.split(',').collect();
        let mut dedup = ids.clone();
        dedup.dedup();
        assert_eq!(ids, dedup);
    }
}

#[test]
fn pipeline_knobs_do_not_change_results() {
    let make_input = || {
        TextInput::new(vec![
            "a b c a b a".to_string(),
            "c c c d e f g".to_string(),
            "a a a a a a a".to_string(),
        ])
    };
    let reference = sorted(run_local(&WordCount, &make_input()));
    for (spill, frame, isend, eager) in [
        (32usize, 16usize, false, 16usize),
        (1 << 20, 1 << 16, true, 64),
        (64, 1 << 20, true, 1 << 20),
    ] {
        let cfg = MpidEngineConfig {
            n_mappers: 2,
            n_reducers: 2,
            spill_threshold_bytes: spill,
            frame_bytes: frame,
            use_isend: isend,
            eager_threshold: eager,
            ..Default::default()
        };
        let job = run_mpid(&cfg, Arc::new(WordCount), Arc::new(make_input()));
        assert_eq!(
            sorted(job.output),
            reference,
            "spill={spill} frame={frame} isend={isend} eager={eager}"
        );
    }
}

#[test]
fn reduce_side_join_engines_agree() {
    use mpid_suite::workloads::{ReduceSideJoin, JOIN_LEFT, JOIN_RIGHT};
    let records: Vec<(u64, (u8, String))> = (0..40)
        .map(|i| {
            let key = i % 7;
            if i % 2 == 0 {
                (key, (JOIN_LEFT, format!("user-{i}")))
            } else {
                (key, (JOIN_RIGHT, format!("order-{i}")))
            }
        })
        .collect();
    let reference = sorted(run_local(
        &ReduceSideJoin,
        &VecInput::round_robin(records.clone(), 3),
    ));
    let job = run_mpid(
        &MpidEngineConfig::with_workers(3, 2),
        Arc::new(ReduceSideJoin),
        Arc::new(VecInput::round_robin(records, 3)),
    );
    assert_eq!(sorted(job.output), reference);
    assert!(!reference.is_empty());
}

#[test]
fn compression_on_the_real_engine_is_transparent() {
    let make_input = || TextGen::new(0xC0DE, 64 * 1024, 4, 400);
    let reference = sorted(run_local(&WordCount, &make_input()));
    let mut cfg = MpidEngineConfig::with_workers(2, 2);
    cfg.compress = true;
    let job = run_mpid(&cfg, Arc::new(WordCount), Arc::new(make_input()));
    assert_eq!(sorted(job.output), reference);
    assert!(
        job.sender_stats.bytes_sent < job.sender_stats.bytes_precompress,
        "zipf text must compress"
    );
}
