//! The mpiverify checker is observation-only at the full-pipeline level:
//! the real MPI-D WordCount engine (the fig6 workload) produces
//! byte-identical output with the checker on and off, across arbitrary
//! inputs and process layouts.

use mpid_suite::mapred::{run_mpid, MpidEngineConfig, TextInput};
use mpid_suite::workloads::{TextGen, WordCount};
use proptest::prelude::*;
use std::sync::Arc;

fn wordcount_output(
    cfg: MpidEngineConfig,
    seed: u64,
    bytes: u64,
    splits: usize,
) -> Vec<(String, u64)> {
    run_mpid(
        &cfg,
        Arc::new(WordCount),
        Arc::new(TextGen::new(seed, bytes, splits, 400)),
    )
    .output
}

proptest! {
    // Each case spins up four MPI universes (2 configs × checked/unchecked);
    // keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn checked_and_unchecked_wordcount_outputs_are_identical(
        seed in any::<u64>(),
        kib in 8u64..64,
        splits in 1usize..6,
        (mappers, reducers) in prop_oneof![Just((1, 1)), Just((2, 1)), Just((3, 2))],
    ) {
        let run = |verify: bool| {
            let mut cfg = MpidEngineConfig::with_workers(mappers, reducers);
            cfg.verify = verify;
            wordcount_output(cfg, seed, kib * 1024, splits)
        };
        prop_assert_eq!(run(true), run(false));
    }
}

/// Deterministic spot check with a fixed tiny corpus, so a regression here
/// pinpoints the checker (not the generator) immediately.
#[test]
fn checked_and_unchecked_agree_on_fixed_corpus() {
    let docs = vec![
        "to be or not to be".to_string(),
        "that is the question".to_string(),
    ];
    let run = |verify: bool| {
        let mut cfg = MpidEngineConfig::with_workers(2, 1);
        cfg.verify = verify;
        run_mpid(
            &cfg,
            Arc::new(WordCount),
            Arc::new(TextInput::new(docs.clone())),
        )
        .output
    };
    let checked = run(true);
    assert_eq!(checked, run(false));
    assert!(checked.iter().any(|(w, c)| w == "be" && *c == 2));
}
