//! Shape tests for the paper's tables and figures, at CI-friendly scale.
//! The full-scale reproductions are the `fig1`/`table1`/`fig2`/`fig3`/`fig6`
//! binaries in `crates/bench`; these tests pin the *trends* so a regression
//! in any simulator is caught by `cargo test`.

use mpid_suite::hadoop_sim::{self, HadoopConfig};
use mpid_suite::mapred::{run_sim_mpid, SimMpidConfig};
use mpid_suite::netsim::{HadoopRpcModel, JettyHttpModel, MpiModel, Transport};
use mpid_suite::workloads::{javasort_spec, wordcount_spec};

const GB: u64 = 1 << 30;

// ---------- Figure 2: latency anchors ----------

#[test]
fn fig2_latency_ratios_match_paper_anchors() {
    let mpi = MpiModel::default();
    let rpc = HadoopRpcModel::default();
    let ratio =
        |b: u64| rpc.one_way_latency(b).as_secs_f64() / mpi.one_way_latency(b).as_secs_f64();
    assert!((ratio(1) - 2.49).abs() < 0.1, "1B: {}", ratio(1));
    assert!(
        (ratio(1 << 10) - 15.1).abs() < 0.5,
        "1KB: {}",
        ratio(1 << 10)
    );
    assert!(
        ratio(512 << 10) > 100.0,
        "beyond 256KB: {}",
        ratio(512 << 10)
    );
    assert!(
        ratio(1 << 20) > 115.0 && ratio(1 << 20) < 130.0,
        "1MB: {}",
        ratio(1 << 20)
    );
}

#[test]
fn fig2_absolute_anchor_points() {
    let mpi = MpiModel::default();
    let rpc = HadoopRpcModel::default();
    assert!((mpi.one_way_latency(1 << 20).as_millis_f64() - 10.3).abs() < 0.1);
    assert!((mpi.one_way_latency(64 << 20).as_millis_f64() - 572.0).abs() < 5.0);
    assert!((rpc.one_way_latency(1 << 20).as_millis_f64() - 1259.0).abs() < 10.0);
    assert!((rpc.one_way_latency(64 << 20).as_millis_f64() - 56_827.0).abs() < 500.0);
}

// ---------- Figure 3: bandwidth shape ----------

#[test]
fn fig3_bandwidth_ordering_and_peaks() {
    let total = 128 << 20;
    let mpi = MpiModel::default();
    let jetty = JettyHttpModel::default();
    let rpc = HadoopRpcModel::default();
    let rpc_peak = rpc.effective_bandwidth(total, 64 << 20);
    let jetty_peak = jetty.effective_bandwidth(total, 64 << 20);
    let mpi_peak = mpi.effective_bandwidth(total, 64 << 20);
    // "about 100 times" RPC; "about 2%-3%" over Jetty.
    assert!(rpc_peak < 1.5e6);
    assert!(mpi_peak / rpc_peak > 50.0);
    let adv = mpi_peak / jetty_peak - 1.0;
    assert!((0.015..=0.04).contains(&adv), "MPI advantage {adv}");
}

// ---------- Table I: copy share grows with input ----------

#[test]
fn table1_copy_share_grows_with_input() {
    let share = |gb: u64, n_red: usize| {
        let report =
            hadoop_sim::run_job(HadoopConfig::icpp2011(8, 8, n_red), javasort_spec(gb * GB));
        report.copy_fraction()
    };
    let small = share(1, 16);
    let large = share(8, 128);
    assert!(large > small, "copy share must grow: {small} -> {large}");
    assert!(
        large > 0.3,
        "8GB/128-reducer run must already be copy-heavy: {large}"
    );
}

// ---------- Figure 1: first-wave outliers & copy dominance ----------

#[test]
fn fig1_first_wave_reducers_are_outliers() {
    let report = hadoop_sim::run_job(HadoopConfig::icpp2011(8, 8, 300), javasort_spec(10 * GB));
    let slots = 56;
    let trimmed = report.without_top_copy_outliers(slots);
    let worst = report.reduces.iter().map(|r| r.copy).max().unwrap();
    let trimmed_max = trimmed.reduces.iter().map(|r| r.copy).max().unwrap();
    assert!(
        worst.as_secs_f64() > 2.0 * trimmed_max.as_secs_f64(),
        "first wave {worst} vs rest {trimmed_max}"
    );
    // Sort stage is in-memory and near-instant.
    let sort = trimmed.reduce_phase_stats(|r| r.sort);
    assert!(sort.mean() < 0.05);
}

// ---------- Figure 6: MPI-D wins, advantage narrows ----------

#[test]
fn fig6_mpid_beats_hadoop_and_ratio_grows() {
    let point = |gb: u64| {
        let spec = wordcount_spec(gb * GB);
        let h = hadoop_sim::run_job(HadoopConfig::icpp2011(7, 7, 7), spec.clone())
            .makespan
            .as_secs_f64();
        let m = run_sim_mpid(
            SimMpidConfig::icpp2011_fig6().with_auto_splits(gb * GB),
            spec,
        )
        .makespan
        .as_secs_f64();
        (h, m)
    };
    let (h1, m1) = point(1);
    let (h8, m8) = point(8);
    assert!(m1 < h1, "1GB: {m1} vs {h1}");
    assert!(m8 < h8, "8GB: {m8} vs {h8}");
    // At 1 GB Hadoop's fixed overheads dominate: MPI-D is several times
    // faster; at 8 GB the gap narrows.
    assert!(m1 / h1 < 0.35, "1GB ratio {}", m1 / h1);
    assert!(m8 / h8 > m1 / h1, "ratio must grow with size");
}

#[test]
fn fig6_hadoop_floor_at_tiny_input() {
    // Even a near-empty job pays setup, heartbeats, JVMs — the mechanism
    // behind MPI-D's 12x win at 1 GB.
    let spec = wordcount_spec(64 << 20);
    let h = hadoop_sim::run_job(HadoopConfig::icpp2011(7, 7, 1), spec.clone());
    let m = run_sim_mpid(
        SimMpidConfig::icpp2011_fig6().with_auto_splits(64 << 20),
        spec,
    );
    assert!(h.makespan.as_secs_f64() > 10.0);
    assert!(m.makespan.as_secs_f64() < h.makespan.as_secs_f64() / 3.0);
}
